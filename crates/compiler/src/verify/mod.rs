//! Multi-pass static kernel verifier.
//!
//! The bounds analysis of [`crate::analyze`] answers one question — *can
//! this access leave its region?* — but a kernel can be memory-safe and
//! still wrong: reading registers never written on some path, synchronising
//! under thread-dependent control flow (barrier divergence hangs real
//! GPUs), or racing on shared memory between barriers. This module is a
//! small pass framework that runs a fixed set of such checks over a kernel
//! and returns structured, machine-readable [`Diagnostic`]s.
//!
//! Passes are pure functions of a [`PassContext`] (kernel + launch
//! knowledge + precomputed CFG and dominator trees). The
//! [`PassManager`] owns the pass list and aggregates results into a
//! [`VerifyReport`] that also carries the per-kernel Type 1/2/3 check
//! breakdown of paper Fig. 16, so one sweep over the workload registry
//! yields both the safety findings and the static-analysis coverage table.
//!
//! Soundness stance, per pass:
//!
//! * **defuse** — may only *under*-report (a register the analysis thinks
//!   is assigned on every path really is); hardware zeroes registers, so
//!   findings are warnings, not errors.
//! * **divergence** — over-approximates thread-dependence (taint), so
//!   every genuinely divergent barrier is reported; uniform branches can
//!   be misclassified tainted but never vice versa.
//! * **race** — over-approximates the set of addresses a thread can touch
//!   (affine-in-tid abstraction with interval coefficients); a reported
//!   absence of diagnostics is a proof, a reported race may be a false
//!   positive.
//! * **elide** — reports sites whose runtime check is provably redundant;
//!   purely informational (severity [`Severity::Info`]).

mod defuse;
mod divergence;
mod elide;
mod race;

pub use defuse::DefBeforeUsePass;
pub use divergence::BarrierDivergencePass;
pub use elide::RedundantCheckPass;
pub use race::SharedRacePass;

use crate::analysis::LaunchKnowledge;
use crate::bat::{analyze, AnalysisConfig};
use gpushield_isa::{BlockId, Cfg, Kernel};
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: an optimisation opportunity or a benign observation.
    Info,
    /// Suspicious but defined behaviour (e.g. reading a never-written
    /// register, which hardware zeroes).
    Warning,
    /// A defect: divergent barrier, shared-memory race, or similar.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One structured finding of a verifier pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable identifier of the emitting pass (e.g. `"race"`).
    pub pass: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Kernel the finding is in.
    pub kernel: String,
    /// Basic block, when the finding has a location.
    pub block: Option<BlockId>,
    /// Instruction index within the block, when applicable.
    pub pc: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// `bbN:M`-style location, or `-` when the finding is kernel-wide.
    pub fn location(&self) -> String {
        match (self.block, self.pc) {
            (Some(b), Some(pc)) => format!("{b}:{pc}"),
            (Some(b), None) => format!("{b}"),
            _ => "-".to_string(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {} {}: {}",
            self.severity,
            self.kernel,
            self.location(),
            self.pass,
            self.message
        )
    }
}

/// Everything a pass may look at: the kernel, the launch-time knowledge the
/// driver would have, and shared precomputed structure.
pub struct PassContext<'a> {
    /// The kernel under verification.
    pub kernel: &'a Kernel,
    /// Launch-time knowledge (argument sizes, geometry).
    pub know: &'a LaunchKnowledge,
    /// The kernel's CFG.
    pub cfg: &'a Cfg,
    /// Immediate forward dominators (entry/unreachable → `None`).
    pub idoms: &'a [Option<BlockId>],
    /// Immediate post-dominators (`None` = only the virtual exit).
    pub ipdoms: &'a [Option<BlockId>],
}

/// One verifier pass.
pub trait Pass {
    /// Stable pass identifier used in [`Diagnostic::pass`].
    fn id(&self) -> &'static str;
    /// Runs the pass and returns its findings.
    fn run(&self, ctx: &PassContext<'_>) -> Vec<Diagnostic>;
}

/// Per-kernel check-site classification (the quantities of paper Fig. 16),
/// as produced by the bounds analysis this verifier audits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckBreakdown {
    /// Type 1: statically proven, check elided.
    pub type1: usize,
    /// Type 2: runtime RBT/BCU check.
    pub type2: usize,
    /// Type 3: size-embedded power-of-two check.
    pub type3: usize,
    /// Additional Type 2 sites the redundant-check pass could upgrade to
    /// Type 1 (subset of `type2`).
    pub elidable: usize,
}

/// Aggregated result of verifying one kernel.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Kernel name.
    pub kernel: String,
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// The kernel's Type 1/2/3 check-site breakdown.
    pub breakdown: CheckBreakdown,
}

impl VerifyReport {
    /// The most severe finding, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Findings at `severity` or above.
    pub fn at_least(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity >= severity)
    }
}

/// Runs a pass pipeline over kernels.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// A manager with no passes; add them with [`PassManager::add`].
    pub fn empty() -> Self {
        PassManager { passes: Vec::new() }
    }

    /// The default pipeline: def-before-use, barrier divergence,
    /// shared-memory races, redundant-check elision.
    pub fn with_default_passes() -> Self {
        let mut m = PassManager::empty();
        m.add(Box::new(DefBeforeUsePass));
        m.add(Box::new(BarrierDivergencePass));
        m.add(Box::new(SharedRacePass));
        m.add(Box::new(RedundantCheckPass));
        m
    }

    /// Appends a pass to the pipeline.
    pub fn add(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// Registered pass ids, in execution order.
    pub fn pass_ids(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.id()).collect()
    }

    /// Verifies one kernel under `know`, running every registered pass and
    /// computing the Fig. 16 check breakdown.
    pub fn verify(&self, kernel: &Kernel, know: &LaunchKnowledge) -> VerifyReport {
        self.verify_profiled(kernel, know).0
    }

    /// Like [`PassManager::verify`], additionally returning a per-pass
    /// [`PassProfile`] (wall time and diagnostic counts). Wall times are
    /// nondeterministic; keep them out of byte-compared artefacts.
    pub fn verify_profiled(
        &self,
        kernel: &Kernel,
        know: &LaunchKnowledge,
    ) -> (VerifyReport, PassProfile) {
        let cfg = Cfg::build(kernel);
        let idoms = cfg.immediate_dominators();
        let ipdoms = cfg.immediate_post_dominators();
        let ctx = PassContext {
            kernel,
            know,
            cfg: &cfg,
            idoms: &idoms,
            ipdoms: &ipdoms,
        };
        let mut diagnostics = Vec::new();
        let mut profile = PassProfile::default();
        for p in &self.passes {
            let start = std::time::Instant::now();
            let found = p.run(&ctx);
            profile.passes.push(PassTiming {
                id: p.id(),
                wall_nanos: start.elapsed().as_nanos() as u64,
                diagnostics: found.len() as u64,
            });
            diagnostics.extend(found);
        }
        // Classify with every static decision enabled — the breakdown is
        // the paper's full Fig. 16 taxonomy, independent of which options
        // a particular driver configuration turns on at launch.
        let bat = analyze(
            kernel,
            know,
            AnalysisConfig {
                enable_type3: true,
                enable_elision: true,
            },
        );
        let breakdown = CheckBreakdown {
            // `analyze` folds elided sites into its static count; report
            // them separately so type1 stays the pure interval-proof count.
            type1: bat.sites_static - bat.elided_sites.len(),
            type2: bat.sites_runtime + bat.elided_sites.len(),
            type3: bat.sites_type3,
            elidable: bat.elided_sites.len(),
        };
        (
            VerifyReport {
                kernel: kernel.name().to_string(),
                diagnostics,
                breakdown,
            },
            profile,
        )
    }
}

/// Timing and finding count for one verifier pass execution.
#[derive(Debug, Clone, Copy)]
pub struct PassTiming {
    /// Stable pass identifier.
    pub id: &'static str,
    /// Wall-clock time the pass took, in nanoseconds (nondeterministic).
    pub wall_nanos: u64,
    /// Diagnostics the pass emitted.
    pub diagnostics: u64,
}

/// Per-pass profile for one [`PassManager::verify_profiled`] run.
#[derive(Debug, Clone, Default)]
pub struct PassProfile {
    /// One entry per registered pass, in execution order.
    pub passes: Vec<PassTiming>,
}

impl PassProfile {
    /// Publishes the profile into `reg` under
    /// `compiler.pass.<id>.{wall_nanos,diagnostics}` (accumulating across
    /// kernels) plus a `compiler.verify.kernels` run counter.
    pub fn publish(&self, reg: &mut gpushield_telemetry::Registry) {
        if !reg.enabled() {
            return;
        }
        reg.add_named("compiler.verify.kernels", 1);
        for t in &self.passes {
            reg.add_named(&format!("compiler.pass.{}.wall_nanos", t.id), t.wall_nanos);
            reg.add_named(
                &format!("compiler.pass.{}.diagnostics", t.id),
                t.diagnostics,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ArgInfo;
    use gpushield_isa::{KernelBuilder, MemSpace, MemWidth, Operand};

    fn know(args: Vec<ArgInfo>, grid: u32, block: u32) -> LaunchKnowledge {
        LaunchKnowledge {
            args,
            local_sizes: vec![],
            block,
            grid,
            heap_size: None,
        }
    }

    #[test]
    fn clean_kernel_has_no_findings_and_a_breakdown() {
        let mut b = KernelBuilder::new("iota");
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let off = b.shl(tid, Operand::Imm(2));
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
        b.ret();
        let k = b.finish().unwrap();
        let know = know(vec![ArgInfo::Buffer { size: 256 * 4 }], 8, 32);
        let pm = PassManager::with_default_passes();
        let r = pm.verify(&k, &know);
        assert!(r.diagnostics.is_empty(), "unexpected: {:?}", r.diagnostics);
        assert_eq!(r.breakdown.type1, 1);
        assert_eq!(r.breakdown.type2, 0);
    }

    #[test]
    fn report_severity_helpers() {
        let d = |sev| Diagnostic {
            pass: "t",
            severity: sev,
            kernel: "k".into(),
            block: None,
            pc: None,
            message: "m".into(),
        };
        let r = VerifyReport {
            kernel: "k".into(),
            diagnostics: vec![d(Severity::Info), d(Severity::Warning)],
            breakdown: CheckBreakdown::default(),
        };
        assert_eq!(r.max_severity(), Some(Severity::Warning));
        assert_eq!(r.at_least(Severity::Warning).count(), 1);
    }

    #[test]
    fn diagnostic_renders_location() {
        let d = Diagnostic {
            pass: "race",
            severity: Severity::Error,
            kernel: "k".into(),
            block: Some(gpushield_isa::BlockId(3)),
            pc: Some(7),
            message: "conflict".into(),
        };
        assert_eq!(d.location(), "bb3:7");
        assert!(d.to_string().contains("[error]"));
    }
}
