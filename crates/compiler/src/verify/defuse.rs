//! Def-before-use: flags registers read on some path before any write.
//!
//! Forward "definitely assigned" dataflow over the CFG: a register is
//! definitely assigned at a point iff every path from the entry writes it
//! first. The meet at joins is set intersection, so the analysis only
//! shrinks — it can miss a *benign* read (one that happens to sit after a
//! write on every feasible path the intervals cannot see) but never
//! invents one. Hardware zeroes the register file at launch, so a read of
//! a never-written register is defined behaviour (it yields 0); findings
//! are therefore [`Severity::Warning`]s: almost always a kernel bug, never
//! a crash.

use super::{Diagnostic, Pass, PassContext, Severity};
use gpushield_isa::{BlockId, Instr, Operand, VReg};

/// The def-before-use pass (`"defuse"`).
pub struct DefBeforeUsePass;

/// Bit-set of definitely-assigned registers (≤ `u128::BITS` registers is
/// ample: kernels declare well under 128).
type RegSet = u128;

fn reads_of(instr: &Instr) -> Vec<VReg> {
    instr
        .sources()
        .into_iter()
        .filter_map(|op| match op {
            Operand::Reg(r) => Some(r),
            _ => None,
        })
        .collect()
}

impl Pass for DefBeforeUsePass {
    fn id(&self) -> &'static str {
        "defuse"
    }

    fn run(&self, ctx: &PassContext<'_>) -> Vec<Diagnostic> {
        let kernel = ctx.kernel;
        let nblocks = kernel.blocks().len();
        let nregs = usize::from(kernel.num_regs()).min(128);

        // Forward fixpoint: IN[b] = ∩ OUT[preds]; OUT = IN ∪ defs(b).
        // `None` = unvisited (⊤, the full set), so intersection is a no-op
        // until a real state arrives.
        let mut in_sets: Vec<Option<RegSet>> = vec![None; nblocks];
        in_sets[0] = Some(0);
        let mut work = vec![0usize];
        while let Some(b) = work.pop() {
            let mut set = in_sets[b].expect("worklist blocks have states");
            for instr in kernel.blocks()[b].instrs() {
                if let Some(r) = instr.dst() {
                    if usize::from(r.0) < nregs {
                        set |= 1u128 << r.0;
                    }
                }
            }
            for s in ctx.cfg.successors(BlockId(b as u32)) {
                let si = s.0 as usize;
                let merged = match in_sets[si] {
                    None => set,
                    Some(old) => old & set,
                };
                if in_sets[si] != Some(merged) {
                    in_sets[si] = Some(merged);
                    work.push(si);
                }
            }
        }

        // Report the first offending read of each register (per block, so a
        // register used uninitialised on two paths surfaces on both).
        let mut out = Vec::new();
        for (bi, blk) in kernel.blocks().iter().enumerate() {
            let Some(mut set) = in_sets[bi] else { continue };
            let mut flagged: RegSet = 0;
            for (ii, instr) in blk.instrs().iter().enumerate() {
                for r in reads_of(instr) {
                    let bit = 1u128 << r.0.min(127);
                    if usize::from(r.0) < nregs && set & bit == 0 && flagged & bit == 0 {
                        flagged |= bit;
                        out.push(Diagnostic {
                            pass: self.id(),
                            severity: Severity::Warning,
                            kernel: kernel.name().to_string(),
                            block: Some(BlockId(bi as u32)),
                            pc: Some(ii),
                            message: format!(
                                "register {r} may be read before any write \
                                 (hardware zero-fill masks the bug)"
                            ),
                        });
                    }
                }
                if let Some(r) = instr.dst() {
                    if usize::from(r.0) < nregs {
                        set |= 1u128 << r.0;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{ArgInfo, LaunchKnowledge};
    use gpushield_isa::{BasicBlock, CmpOp, Kernel, KernelBuilder, Special};

    fn run(kernel: &Kernel) -> Vec<Diagnostic> {
        let know = LaunchKnowledge {
            args: vec![ArgInfo::Scalar { value: None }],
            local_sizes: vec![],
            block: 32,
            grid: 1,
            heap_size: None,
        };
        let cfg = gpushield_isa::Cfg::build(kernel);
        let idoms = cfg.immediate_dominators();
        let ipdoms = cfg.immediate_post_dominators();
        DefBeforeUsePass.run(&PassContext {
            kernel,
            know: &know,
            cfg: &cfg,
            idoms: &idoms,
            ipdoms: &ipdoms,
        })
    }

    #[test]
    fn straight_line_defined_use_is_clean() {
        let mut b = KernelBuilder::new("k");
        let t = b.mov(b.thread_id());
        let _ = b.add(t, Operand::Imm(1));
        b.ret();
        let k = b.finish().unwrap();
        assert!(run(&k).is_empty());
    }

    #[test]
    fn read_before_any_write_is_flagged() {
        // r1 = r0 + 1 with r0 never written: hand-built (the builder cannot
        // express this).
        let blk = BasicBlock::from_instrs(vec![
            Instr::Bin {
                op: gpushield_isa::BinOp::Add,
                dst: VReg(1),
                a: Operand::Reg(VReg(0)),
                b: Operand::Imm(1),
            },
            Instr::Ret,
        ]);
        let k = Kernel::from_raw("k".to_string(), vec![], vec![], vec![blk], 2, 0).unwrap();
        let ds = run(&k);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].severity, Severity::Warning);
        assert!(ds[0].message.contains("r0"));
    }

    #[test]
    fn one_armed_definition_is_flagged_after_join() {
        // if (tid < 4) r1 = 7; use r1  — r1 unassigned on the else path.
        let b0 = BasicBlock::from_instrs(vec![
            Instr::Cmp {
                op: CmpOp::Lt,
                dst: VReg(0),
                a: Operand::Special(Special::ThreadId),
                b: Operand::Imm(4),
            },
            Instr::Bra {
                cond: Operand::Reg(VReg(0)),
                taken: BlockId(1),
                not_taken: BlockId(2),
            },
        ]);
        let b1 = BasicBlock::from_instrs(vec![
            Instr::Mov {
                dst: VReg(1),
                src: Operand::Imm(7),
            },
            Instr::Jmp { target: BlockId(2) },
        ]);
        let b2 = BasicBlock::from_instrs(vec![
            Instr::Bin {
                op: gpushield_isa::BinOp::Add,
                dst: VReg(2),
                a: Operand::Reg(VReg(1)),
                b: Operand::Imm(1),
            },
            Instr::Ret,
        ]);
        let k = Kernel::from_raw("k".to_string(), vec![], vec![], vec![b0, b1, b2], 3, 0).unwrap();
        let ds = run(&k);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].block, Some(BlockId(2)));
    }

    #[test]
    fn both_armed_definition_is_clean() {
        let b0 = BasicBlock::from_instrs(vec![
            Instr::Cmp {
                op: CmpOp::Lt,
                dst: VReg(0),
                a: Operand::Special(Special::ThreadId),
                b: Operand::Imm(4),
            },
            Instr::Bra {
                cond: Operand::Reg(VReg(0)),
                taken: BlockId(1),
                not_taken: BlockId(2),
            },
        ]);
        let arm = |v: i64| {
            BasicBlock::from_instrs(vec![
                Instr::Mov {
                    dst: VReg(1),
                    src: Operand::Imm(v),
                },
                Instr::Jmp { target: BlockId(3) },
            ])
        };
        let b3 = BasicBlock::from_instrs(vec![
            Instr::Bin {
                op: gpushield_isa::BinOp::Add,
                dst: VReg(2),
                a: Operand::Reg(VReg(1)),
                b: Operand::Imm(1),
            },
            Instr::Ret,
        ]);
        let k = Kernel::from_raw(
            "k".to_string(),
            vec![],
            vec![],
            vec![b0, arm(7), arm(9), b3],
            3,
            0,
        )
        .unwrap();
        assert!(run(&k).is_empty());
    }
}
