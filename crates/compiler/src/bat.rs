//! The Bounds-Analysis Table: per-site check decisions, per-pointer
//! classes, and statically detected violations (paper §5.3, Fig. 5's BAT).

use crate::absval::Origin;
use crate::analysis::{
    analyze_kernel, origin_size, protected_space, resolve_site, transfer, LaunchKnowledge,
};
use gpushield_isa::{
    AddrExpr, BlockId, CheckPlan, Instr, Kernel, MemSpace, Operand, PtrClass, SiteCheck,
};
use std::collections::HashMap;
use std::fmt;

/// Static-analysis configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalysisConfig {
    /// Enable Type 3 (size-embedded) pointers for Method A/C addressing
    /// (§5.3.3). Requires the driver to pad allocations to powers of two.
    pub enable_type3: bool,
    /// Enable redundant-check elision: a Type 2 site whose address
    /// expression was already checked on every incoming path (with no
    /// intervening redefinition of its registers) is upgraded to Type 1.
    /// Sound only under precise faulting — a squashed violation at the
    /// covering site would otherwise let the elided site run unchecked —
    /// so it is off by default and opted into per launch.
    pub enable_elision: bool,
}

/// An out-of-bounds access proven at compile time (reported to the user
/// immediately, §5.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticViolation {
    /// Offending instruction site.
    pub site: (BlockId, usize),
    /// Region accessed.
    pub origin: Origin,
    /// Proven offset bounds (bytes).
    pub offset_lo: i128,
    /// Upper offset bound (bytes).
    pub offset_hi: i128,
    /// The region's size.
    pub size: u64,
}

impl fmt::Display for StaticViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "static out-of-bounds at {}:{}: {} offset [{}, {}] vs size {}",
            self.site.0, self.site.1, self.origin, self.offset_lo, self.offset_hi, self.size
        )
    }
}

/// The compiler's full output for one kernel + launch configuration.
#[derive(Debug, Clone)]
pub struct BoundsAnalysis {
    /// Per-site decisions consumed by the hardware (attached to the binary
    /// and handed to the driver, Fig. 9 step ③).
    pub plan: CheckPlan,
    /// Pointer class the driver should tag each kernel argument with.
    pub param_class: Vec<PtrClass>,
    /// Pointer class for each local variable's base.
    pub local_class: Vec<PtrClass>,
    /// Statically proven violations.
    pub violations: Vec<StaticViolation>,
    /// Sites proven safe (Type 1).
    pub sites_static: usize,
    /// Sites requiring runtime RBT checks (Type 2).
    pub sites_runtime: usize,
    /// Sites using embedded-size checks (Type 3).
    pub sites_type3: usize,
    /// All protected-space memory sites.
    pub sites_total: usize,
    /// The region each resolvable site was proven to address, keyed by
    /// site. Sites whose base could not be traced are absent. The driver's
    /// soundness auditor uses this to turn per-site check claims into
    /// concrete virtual-address windows.
    pub site_origins: HashMap<(BlockId, usize), Origin>,
    /// Sites upgraded from Type 2 to Type 1 by redundant-check elision
    /// (empty unless [`AnalysisConfig::enable_elision`]), sorted. Their
    /// in-bounds guarantee is the *region* entry of their origin — the
    /// covering runtime check — not an interval proof of their own.
    pub elided_sites: Vec<(BlockId, usize)>,
    /// Worklist iterations the interval fixpoint consumed — a widening
    /// health diagnostic (bounded far below the fuel ceiling for any
    /// well-behaved kernel; see the nested-loop termination test).
    pub fixpoint_iterations: u32,
}

impl BoundsAnalysis {
    /// Fraction of sites whose runtime check was eliminated, in `[0, 1]`.
    pub fn static_fraction(&self) -> f64 {
        if self.sites_total == 0 {
            0.0
        } else {
            self.sites_static as f64 / self.sites_total as f64
        }
    }
}

/// Runs the LLVM-style static bounds analysis of §5.3 on `kernel` with the
/// launch-time knowledge `know`, producing the Bounds-Analysis Table.
///
/// # Example
///
/// ```
/// use gpushield_compiler::{analyze, AnalysisConfig, ArgInfo, LaunchKnowledge};
/// use gpushield_isa::{KernelBuilder, MemSpace, MemWidth, Operand};
///
/// // out[tid] = tid — provably in bounds for a 64-element buffer.
/// let mut b = KernelBuilder::new("iota");
/// let out = b.param_buffer("out", false);
/// let tid = b.global_thread_id();
/// let off = b.shl(tid, Operand::Imm(2));
/// b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
/// b.ret();
/// let k = b.finish()?;
///
/// let know = LaunchKnowledge {
///     args: vec![ArgInfo::Buffer { size: 64 * 4 }],
///     local_sizes: vec![],
///     block: 16,
///     grid: 4,
///     heap_size: None,
/// };
/// let bat = analyze(&k, &know, AnalysisConfig::default());
/// assert_eq!(bat.sites_static, 1);
/// assert_eq!(bat.sites_total, 1);
/// # Ok::<(), gpushield_isa::ValidateError>(())
/// ```
pub fn analyze(kernel: &Kernel, know: &LaunchKnowledge, cfg: AnalysisConfig) -> BoundsAnalysis {
    let result = analyze_kernel(kernel, know);
    let mut plan = CheckPlan::all_runtime();
    let mut violations = Vec::new();
    // Raw per-site decisions plus the origin of each dynamic site, for the
    // pointer-class consolidation pass.
    let mut site_origin: HashMap<(BlockId, usize), Origin> = HashMap::new();
    let mut tentative: Vec<((BlockId, usize), SiteCheck)> = Vec::new();

    for (bi, blk) in kernel.blocks().iter().enumerate() {
        let Some(entry) = &result.in_states[bi] else {
            continue; // unreachable block: never executes, nothing to check
        };
        let mut st = entry.clone();
        let mut cmp_defs = HashMap::new();
        for (ii, instr) in blk.instrs().iter().enumerate() {
            if let Instr::Ld { space, width, .. }
            | Instr::St { space, width, .. }
            | Instr::AtomAdd { space, width, .. } = instr
            {
                if protected_space(*space) {
                    let site = (BlockId(bi as u32), ii);
                    let resolved = resolve_site(instr, &st, kernel, know);
                    let decision = match resolved {
                        Some(sa) => {
                            site_origin.insert(site, sa.origin);
                            match origin_size(sa.origin, kernel, know) {
                                Some(size) => {
                                    let limit = i128::from(size) - i128::from(width.bytes());
                                    if sa.offset.within(0, limit) {
                                        SiteCheck::Static
                                    } else if sa.offset.lo() > limit || sa.offset.hi() < 0 {
                                        violations.push(StaticViolation {
                                            site,
                                            origin: sa.origin,
                                            offset_lo: sa.offset.lo(),
                                            offset_hi: sa.offset.hi(),
                                            size,
                                        });
                                        SiteCheck::Runtime
                                    } else {
                                        maybe_type3(cfg, sa.method, sa.origin)
                                    }
                                }
                                None => maybe_type3(cfg, sa.method, sa.origin),
                            }
                        }
                        None => SiteCheck::Runtime,
                    };
                    tentative.push((site, decision));
                }
            }
            transfer(instr, &mut st, &mut cmp_defs, kernel, know);
        }
    }

    // Consolidation: a pointer carries exactly one tag, so a region with
    // any Runtime (Type 2) site must be tagged Type 2 — its would-be
    // Type 3 sites are downgraded to Runtime.
    let mut region_has_runtime: HashMap<Origin, bool> = HashMap::new();
    for (site, d) in &tentative {
        if *d == SiteCheck::Runtime {
            if let Some(o) = site_origin.get(site) {
                region_has_runtime.insert(*o, true);
            }
        }
    }
    let mut sites_static = 0;
    let mut sites_runtime = 0;
    let mut sites_type3 = 0;
    let mut region_class: HashMap<Origin, PtrClass> = HashMap::new();
    for (site, d) in tentative {
        let origin = site_origin.get(&site).copied();
        let d = match d {
            SiteCheck::SizeEmbedded
                if origin
                    .map(|o| region_has_runtime.get(&o).copied().unwrap_or(false))
                    .unwrap_or(true) =>
            {
                SiteCheck::Runtime
            }
            other => other,
        };
        match d {
            SiteCheck::Static => sites_static += 1,
            SiteCheck::Runtime => {
                sites_runtime += 1;
                if let Some(o) = origin {
                    region_class.insert(o, PtrClass::Region);
                }
            }
            SiteCheck::SizeEmbedded => {
                sites_type3 += 1;
                if let Some(o) = origin {
                    region_class.entry(o).or_insert(PtrClass::SizeEmbedded);
                }
            }
        }
        plan.set(site, d);
    }
    // A site whose base could not be resolved still needs a tag to check
    // against at runtime; conservatively tag every buffer that has no class
    // yet as Region when any unresolved runtime site exists, otherwise
    // Unprotected. Unresolved sites use Method B pointers whose tag flows
    // from whichever buffer they were derived from, so Region is the safe
    // default for all buffer arguments that were not proven all-static.
    let any_unresolved = plan
        .iter()
        .any(|(s, d)| d == SiteCheck::Runtime && !site_origin.contains_key(&s));
    let param_class = (0..kernel.params().len() as u8)
        .map(|p| {
            if !kernel.params()[usize::from(p)].is_buffer() {
                PtrClass::Unprotected
            } else {
                match region_class.get(&Origin::Param(p)) {
                    Some(c) => *c,
                    None if any_unresolved => PtrClass::Region,
                    None => PtrClass::Unprotected,
                }
            }
        })
        .collect();
    let local_class = (0..kernel.locals().len() as u8)
        .map(|v| match region_class.get(&Origin::Local(v)) {
            Some(c) => *c,
            None if any_unresolved => PtrClass::Region,
            None => PtrClass::Unprotected,
        })
        .collect();

    let mut elided_sites = Vec::new();
    if cfg.enable_elision {
        elided_sites = elide_redundant_checks(kernel, &mut plan);
        sites_static += elided_sites.len();
        sites_runtime -= elided_sites.len();
    }

    BoundsAnalysis {
        sites_total: sites_static + sites_runtime + sites_type3,
        plan,
        param_class,
        local_class,
        violations,
        sites_static,
        sites_runtime,
        sites_type3,
        site_origins: site_origin,
        elided_sites,
        fixpoint_iterations: result.iterations,
    }
}

/// What a dominating runtime check established for one address expression:
/// the widest access checked and whether any checking site was a write
/// (stores may only ride on a checked *store*, which also exercised the
/// region's read-only bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Avail {
    width: u64,
    store: bool,
}

type AvailState = HashMap<(AddrExpr, MemSpace), Avail>;

fn addr_mentions(addr: &AddrExpr, r: gpushield_isa::VReg) -> bool {
    let ops: [Option<Operand>; 2] = match addr {
        AddrExpr::BindingTable { offset, .. } => [Some(*offset), None],
        AddrExpr::Flat { addr } => [Some(*addr), None],
        AddrExpr::BaseOffset { base, offset } => [Some(*base), Some(*offset)],
    };
    ops.iter()
        .flatten()
        .any(|op| matches!(op, Operand::Reg(x) if *x == r))
}

/// Available-expressions dataflow over the Type 2 sites of `plan`: a site
/// is upgraded to [`SiteCheck::Static`] when, on *every* path reaching it,
/// an identical address expression (same [`AddrExpr`] and space, registers
/// not redefined in between) was already checked at a Type 2 site with at
/// least this site's width — and, for writes, that covering check was
/// itself a write. Intersection at joins makes this the dataflow form of
/// "dominated by an identical-region check"; it is strictly more precise
/// than a dominator-tree walk because a check on each arm of a diamond
/// also covers the join.
fn elide_redundant_checks(kernel: &Kernel, plan: &mut CheckPlan) -> Vec<(BlockId, usize)> {
    let cfg = gpushield_isa::Cfg::build(kernel);
    let nblocks = kernel.blocks().len();

    // Per-block walk: from an entry state, computes the exit state and —
    // in the decision pass — records sites whose key is available at the
    // point of the access.
    let walk = |bi: usize, st: &mut AvailState, elided: Option<&mut Vec<(BlockId, usize)>>| {
        let mut elided = elided;
        for (ii, instr) in kernel.blocks()[bi].instrs().iter().enumerate() {
            if let Instr::Ld {
                addr, space, width, ..
            }
            | Instr::St {
                addr, space, width, ..
            }
            | Instr::AtomAdd {
                addr, space, width, ..
            } = instr
            {
                let site = (BlockId(bi as u32), ii);
                if protected_space(*space) && plan.get(site) == SiteCheck::Runtime {
                    let key = (*addr, *space);
                    let is_write = !matches!(instr, Instr::Ld { .. });
                    if let Some(out) = elided.as_deref_mut() {
                        if let Some(a) = st.get(&key) {
                            if a.width >= width.bytes() && (a.store || !is_write) {
                                out.push(site);
                            }
                        }
                    }
                    let e = st.entry(key).or_insert(Avail {
                        width: 0,
                        store: false,
                    });
                    e.width = e.width.max(width.bytes());
                    e.store |= is_write;
                }
            }
            if let Some(r) = instr.dst() {
                st.retain(|(addr, _), _| !addr_mentions(addr, r));
            }
        }
    };

    let meet = |a: &AvailState, b: &AvailState| -> AvailState {
        let mut out = AvailState::new();
        for (k, va) in a {
            if let Some(vb) = b.get(k) {
                out.insert(
                    *k,
                    Avail {
                        width: va.width.min(vb.width),
                        store: va.store && vb.store,
                    },
                );
            }
        }
        out
    };

    // Fixpoint on block-entry states; `None` is ⊤ (block not yet reached),
    // so loops converge from above as in classic available expressions.
    let mut in_states: Vec<Option<AvailState>> = vec![None; nblocks];
    in_states[0] = Some(AvailState::new());
    let mut changed = true;
    while changed {
        changed = false;
        for bi in 0..nblocks {
            let Some(entry) = in_states[bi].clone() else {
                continue;
            };
            let mut st = entry;
            walk(bi, &mut st, None);
            for s in cfg.successors(BlockId(bi as u32)) {
                let si = s.0 as usize;
                let new = match &in_states[si] {
                    None => st.clone(),
                    Some(old) => meet(old, &st),
                };
                if in_states[si].as_ref() != Some(&new) {
                    in_states[si] = Some(new);
                    changed = true;
                }
            }
        }
    }

    let mut elided = Vec::new();
    for (bi, state) in in_states.iter().enumerate() {
        let Some(entry) = state.clone() else {
            continue;
        };
        let mut st = entry;
        walk(bi, &mut st, Some(&mut elided));
    }
    elided.sort_unstable();
    for site in &elided {
        plan.set(*site, SiteCheck::Static);
    }
    elided
}

fn maybe_type3(cfg: AnalysisConfig, method: char, origin: Origin) -> SiteCheck {
    if cfg.enable_type3 && (method == 'A' || method == 'C') && origin != Origin::Heap {
        SiteCheck::SizeEmbedded
    } else {
        SiteCheck::Runtime
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::ArgInfo;
    use gpushield_isa::{KernelBuilder, MemSpace, MemWidth, Operand};

    fn know(sizes: &[u64], block: u32, grid: u32) -> LaunchKnowledge {
        LaunchKnowledge {
            args: sizes.iter().map(|s| ArgInfo::Buffer { size: *s }).collect(),
            local_sizes: vec![],
            block,
            grid,
            heap_size: None,
        }
    }

    #[test]
    fn affine_tid_access_is_static() {
        let mut b = KernelBuilder::new("k");
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let off = b.shl(tid, Operand::Imm(2));
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
        b.ret();
        let k = b.finish().unwrap();
        let bat = analyze(&k, &know(&[1024 * 4], 256, 4), AnalysisConfig::default());
        assert_eq!(bat.sites_static, 1);
        assert_eq!(bat.param_class[0], PtrClass::Unprotected);
        assert!(bat.violations.is_empty());
    }

    #[test]
    fn undersized_buffer_needs_runtime_check() {
        let mut b = KernelBuilder::new("k");
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let off = b.shl(tid, Operand::Imm(2));
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
        b.ret();
        let k = b.finish().unwrap();
        // 1024 threads but only 512 elements: offsets may exceed the size.
        let bat = analyze(&k, &know(&[512 * 4], 256, 4), AnalysisConfig::default());
        assert_eq!(bat.sites_runtime, 1);
        assert_eq!(bat.param_class[0], PtrClass::Region);
    }

    #[test]
    fn guarded_access_is_proven_by_refinement() {
        // if (tid < n) out[tid] = 1 — the §6.4 software-check idiom.
        let mut b = KernelBuilder::new("k");
        let out = b.param_buffer("out", false);
        let n = b.param_scalar("n");
        let tid = b.global_thread_id();
        let c = b.lt(tid, n);
        b.if_then(c, |b| {
            let off = b.shl(tid, Operand::Imm(2));
            b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
        });
        b.ret();
        let k = b.finish().unwrap();
        let knowledge = LaunchKnowledge {
            args: vec![
                ArgInfo::Buffer { size: 100 * 4 },
                ArgInfo::Scalar { value: Some(100) },
            ],
            local_sizes: vec![],
            block: 256,
            grid: 16,
            heap_size: None,
        };
        let bat = analyze(&k, &knowledge, AnalysisConfig::default());
        assert_eq!(bat.sites_static, 1, "guard should prove the access safe");
    }

    #[test]
    fn counted_loop_is_proven_by_widening_plus_refinement() {
        // for i in 0..n: out[i] = i, n known = buffer length.
        let mut b = KernelBuilder::new("k");
        let out = b.param_buffer("out", false);
        let n = b.param_scalar("n");
        b.for_loop(Operand::Imm(0), n, 1, |b, i| {
            let off = b.shl(i, Operand::Imm(2));
            b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), i);
        });
        b.ret();
        let k = b.finish().unwrap();
        let knowledge = LaunchKnowledge {
            args: vec![
                ArgInfo::Buffer { size: 64 * 4 },
                ArgInfo::Scalar { value: Some(64) },
            ],
            local_sizes: vec![],
            block: 32,
            grid: 1,
            heap_size: None,
        };
        let bat = analyze(&k, &knowledge, AnalysisConfig::default());
        assert_eq!(bat.sites_static, 1);
    }

    #[test]
    fn indirect_access_stays_runtime() {
        // out[idx[tid]] = 1 — graph-style indirection.
        let mut b = KernelBuilder::new("k");
        let idx = b.param_buffer("idx", true);
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let ioff = b.shl(tid, Operand::Imm(2));
        let j = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(idx, ioff));
        let off = b.shl(j, Operand::Imm(2));
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(out, off),
            Operand::Imm(1),
        );
        b.ret();
        let k = b.finish().unwrap();
        let bat = analyze(
            &k,
            &know(&[64 * 4, 64 * 4], 16, 4),
            AnalysisConfig::default(),
        );
        assert_eq!(bat.sites_static, 1, "the index load itself is affine");
        assert_eq!(bat.sites_runtime, 1, "the indirect store is not");
        assert_eq!(bat.param_class[1], PtrClass::Region);
    }

    #[test]
    fn guaranteed_overflow_is_reported_statically() {
        let mut b = KernelBuilder::new("k");
        let out = b.param_buffer("out", false);
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(out, Operand::Imm(4096)),
            Operand::Imm(0xBAD),
        );
        b.ret();
        let k = b.finish().unwrap();
        let bat = analyze(&k, &know(&[64], 1, 1), AnalysisConfig::default());
        assert_eq!(bat.violations.len(), 1);
        assert_eq!(bat.violations[0].size, 64);
        assert_eq!(bat.violations[0].offset_lo, 4096);
    }

    #[test]
    fn type3_applies_to_method_c_sites_without_runtime_peers() {
        let mut b = KernelBuilder::new("k");
        let out = b.param_buffer("out", false);
        let n = b.param_scalar("n"); // unknown scalar → unprovable offset
        let off4 = b.shl(n, Operand::Imm(2));
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off4), n);
        b.ret();
        let k = b.finish().unwrap();
        let knowledge = LaunchKnowledge {
            args: vec![
                ArgInfo::Buffer { size: 256 },
                ArgInfo::Scalar { value: None },
            ],
            local_sizes: vec![],
            block: 16,
            grid: 1,
            heap_size: None,
        };
        let with = analyze(
            &k,
            &knowledge,
            AnalysisConfig {
                enable_type3: true,
                ..AnalysisConfig::default()
            },
        );
        assert_eq!(with.sites_type3, 1);
        assert_eq!(with.param_class[0], PtrClass::SizeEmbedded);
        let without = analyze(&k, &knowledge, AnalysisConfig::default());
        assert_eq!(without.sites_runtime, 1);
    }

    #[test]
    fn shared_memory_sites_are_not_counted() {
        let mut b = KernelBuilder::new("k");
        b.shared_mem(256);
        let tid = b.mov(b.thread_id());
        let off = b.shl(tid, Operand::Imm(2));
        b.st(MemSpace::Shared, MemWidth::W4, b.flat(off), tid);
        b.ret();
        let k = b.finish().unwrap();
        let bat = analyze(&k, &know(&[], 16, 1), AnalysisConfig::default());
        assert_eq!(bat.sites_total, 0);
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use crate::analysis::ArgInfo;
    use gpushield_isa::{KernelBuilder, MemSpace, MemWidth, Operand};

    fn know1(size: u64, block: u32, grid: u32) -> LaunchKnowledge {
        LaunchKnowledge {
            args: vec![ArgInfo::Buffer { size }],
            local_sizes: vec![],
            block,
            grid,
            heap_size: Some(1 << 20),
        }
    }

    #[test]
    fn heap_pointers_are_always_runtime() {
        let mut b = KernelBuilder::new("k");
        let out = b.param_buffer("out", false);
        let p = b.malloc(Operand::Imm(64));
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(p, Operand::Imm(0)),
            Operand::Imm(1),
        );
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(out, Operand::Imm(0)),
            Operand::Imm(1),
        );
        b.ret();
        let k = b.finish().unwrap();
        let bat = analyze(&k, &know1(4096, 16, 1), AnalysisConfig::default());
        // The heap store is runtime; the out store is provable.
        assert_eq!(bat.sites_runtime, 1);
        assert_eq!(bat.sites_static, 1);
    }

    #[test]
    fn select_joins_both_arms() {
        // off = sel(cond, 0, huge) — the huge arm must keep the site
        // runtime even though one arm is safe.
        let mut b = KernelBuilder::new("k");
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let c = b.lt(tid, Operand::Imm(4));
        let off = b.sel(c, Operand::Imm(0), Operand::Imm(1 << 20));
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
        b.ret();
        let k = b.finish().unwrap();
        let bat = analyze(&k, &know1(4096, 16, 1), AnalysisConfig::default());
        assert_eq!(bat.sites_runtime, 1);
    }

    #[test]
    fn ne_guard_does_not_prove_bounds() {
        // if (tid != 5) out[tid] — inequality refines nothing useful.
        let mut b = KernelBuilder::new("k");
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let c = b.cmp(gpushield_isa::CmpOp::Ne, tid, Operand::Imm(5));
        b.if_then(c, |b| {
            let off = b.shl(tid, Operand::Imm(2));
            b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
        });
        b.ret();
        let k = b.finish().unwrap();
        // 64 threads but a 32-element buffer: unsafe, must stay runtime.
        let bat = analyze(&k, &know1(32 * 4, 64, 1), AnalysisConfig::default());
        assert_eq!(bat.sites_runtime, 1);
    }

    #[test]
    fn eq_guard_pins_the_index() {
        // if (tid == 3) out[tid] = 1 — equality proves the exact slot.
        let mut b = KernelBuilder::new("k");
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let c = b.eq(tid, Operand::Imm(3));
        b.if_then(c, |b| {
            let off = b.shl(tid, Operand::Imm(2));
            b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
        });
        b.ret();
        let k = b.finish().unwrap();
        let bat = analyze(&k, &know1(16, 64, 4), AnalysisConfig::default());
        assert_eq!(bat.sites_static, 1, "tid==3 → offset 12 < 16");
    }

    #[test]
    fn flat_addressing_resolves_through_pointer_arithmetic() {
        // Method B: full address materialised in a register — the operand
        // tree walks back through the add to the buffer base (Fig. 8).
        let mut b = KernelBuilder::new("k");
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let off = b.shl(tid, Operand::Imm(2));
        let full = b.add(out, off);
        let addr = b.flat(full);
        b.st(MemSpace::Global, MemWidth::W4, addr, tid);
        b.ret();
        let k = b.finish().unwrap();
        let bat = analyze(&k, &know1(64 * 4, 16, 4), AnalysisConfig::default());
        assert_eq!(bat.sites_static, 1, "flat form must still be provable");
        let bad = analyze(&k, &know1(16 * 4, 16, 4), AnalysisConfig::default());
        assert_eq!(bad.sites_runtime, 1);
    }

    #[test]
    fn provable_local_variable_is_unprotected() {
        let mut b = KernelBuilder::new("k");
        let v = b.local_var("arr", 4);
        let base = b.local_base(v);
        let tid = b.global_thread_id();
        let off = b.shl(tid, Operand::Imm(2));
        b.st(MemSpace::Local, MemWidth::W4, b.base_offset(base, off), tid);
        b.ret();
        let k = b.finish().unwrap();
        let know = LaunchKnowledge {
            args: vec![],
            local_sizes: vec![64 * 4], // 64 threads × 4B word
            block: 16,
            grid: 4,
            heap_size: None,
        };
        let bat = analyze(&k, &know, AnalysisConfig::default());
        assert_eq!(bat.sites_static, 1);
        assert_eq!(bat.local_class[0], gpushield_isa::PtrClass::Unprotected);
    }

    #[test]
    fn fig13_kmeans_swap_guard_proves_everything() {
        // The paper's Fig. 13 kernel: the hoisted `if (tid < npoints)`
        // plus the feature loop — all sites provable when sizes line up.
        let mut b = KernelBuilder::new("swap");
        let feat = b.param_buffer("feat", true);
        let feat_swap = b.param_buffer("feat_swap", false);
        let npoints = b.param_scalar("npoints");
        const NF: i64 = 4;
        let tid = b.global_thread_id();
        let c = b.lt(tid, npoints);
        b.if_then(c, |b| {
            b.for_loop(Operand::Imm(0), Operand::Imm(NF), 1, |b, i| {
                let src_row = b.mul(tid, Operand::Imm(NF));
                let sidx = b.add(src_row, i);
                let soff = b.shl(sidx, Operand::Imm(2));
                let v = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(feat, soff));
                let dcol = b.mul(i, npoints);
                let didx = b.add(dcol, tid);
                let doff = b.shl(didx, Operand::Imm(2));
                b.st(
                    MemSpace::Global,
                    MemWidth::W4,
                    b.base_offset(feat_swap, doff),
                    v,
                );
            });
        });
        b.ret();
        let k = b.finish().unwrap();
        let np = 512u64;
        let know = LaunchKnowledge {
            args: vec![
                ArgInfo::Buffer {
                    size: np * NF as u64 * 4,
                },
                ArgInfo::Buffer {
                    size: np * NF as u64 * 4,
                },
                ArgInfo::Scalar { value: Some(np) },
            ],
            local_sizes: vec![],
            block: 256,
            grid: 4,
            heap_size: None,
        };
        let bat = analyze(&k, &know, AnalysisConfig::default());
        assert_eq!(bat.sites_static, bat.sites_total);
        assert_eq!(bat.sites_total, 2);
    }

    #[test]
    fn clamp_idiom_is_proven_through_min_max() {
        // idx = min(max(tid - 1, 0), n - 1) — the pathfinder edge clamp.
        let mut b = KernelBuilder::new("k");
        let out = b.param_buffer("out", false);
        let n = b.param_scalar("n");
        let tid = b.global_thread_id();
        let m1 = b.sub(tid, Operand::Imm(1));
        let lo = b.max(m1, Operand::Imm(0));
        let nm1 = b.sub(n, Operand::Imm(1));
        let idx = b.min(lo, nm1);
        let off = b.shl(idx, Operand::Imm(2));
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
        b.ret();
        let k = b.finish().unwrap();
        let know = LaunchKnowledge {
            args: vec![
                ArgInfo::Buffer { size: 64 * 4 },
                ArgInfo::Scalar { value: Some(64) },
            ],
            local_sizes: vec![],
            block: 256, // far more threads than elements — the clamp saves it
            grid: 4,
            heap_size: None,
        };
        let bat = analyze(&k, &know, AnalysisConfig::default());
        assert_eq!(bat.sites_static, 1, "clamped index must be provable");
    }

    fn elide_cfg() -> AnalysisConfig {
        AnalysisConfig {
            enable_elision: true,
            ..AnalysisConfig::default()
        }
    }

    #[test]
    fn repeated_identical_access_is_elided_with_store_discipline() {
        // Three accesses to out[tid<<2] on an undersized buffer: the first
        // load checks; the store may NOT ride on a load-only check (it
        // must exercise the read-only bit itself); the second load rides
        // on either check.
        let mut b = KernelBuilder::new("k");
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let off = b.shl(tid, Operand::Imm(2));
        let v = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(out, off));
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), v);
        let _ = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(out, off));
        b.ret();
        let k = b.finish().unwrap();
        let know = know1(16, 64, 4); // 64 threads, 4 elements: unprovable
        let plain = analyze(&k, &know, AnalysisConfig::default());
        assert_eq!(plain.sites_runtime, 3);
        assert!(plain.elided_sites.is_empty());

        let bat = analyze(&k, &know, elide_cfg());
        assert_eq!(bat.elided_sites.len(), 1, "only the trailing load");
        assert_eq!(bat.sites_static, 1);
        assert_eq!(bat.sites_runtime, 2);
        let elided = bat.elided_sites[0];
        assert_eq!(bat.plan.get(elided), SiteCheck::Static);
        // The trailing load is the last memory instruction in block 0.
        assert!(matches!(k.blocks()[0].instrs()[elided.1], Instr::Ld { .. }));
    }

    #[test]
    fn store_rides_on_a_dominating_store_check() {
        let mut b = KernelBuilder::new("k");
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let off = b.shl(tid, Operand::Imm(2));
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
        b.ret();
        let k = b.finish().unwrap();
        let bat = analyze(&k, &know1(16, 64, 4), elide_cfg());
        assert_eq!(bat.sites_runtime, 1);
        assert_eq!(bat.elided_sites.len(), 1);
    }

    #[test]
    fn register_redefinition_kills_availability() {
        let mut b = KernelBuilder::new("k");
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let off = b.shl(tid, Operand::Imm(2));
        let _ = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(out, off));
        // Same register, new value: the old check no longer covers it.
        let off2 = b.add(off, Operand::Imm(4));
        b.assign(off, off2);
        let _ = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(out, off));
        b.ret();
        let k = b.finish().unwrap();
        let bat = analyze(&k, &know1(16, 64, 4), elide_cfg());
        assert!(bat.elided_sites.is_empty(), "redefinition must kill");
        assert_eq!(bat.sites_runtime, 2);
    }

    #[test]
    fn join_is_covered_only_when_every_path_checks() {
        // Check on one arm only: the join access keeps its check. Check on
        // both arms: the join access is elided (this is where dataflow is
        // stronger than a dominator-tree walk).
        let build = |both: bool| {
            let mut b = KernelBuilder::new("k");
            let out = b.param_buffer("out", false);
            let tid = b.global_thread_id();
            let off = b.shl(tid, Operand::Imm(2));
            let c = b.lt(tid, Operand::Imm(32));
            b.if_then_else(
                c,
                |b| {
                    b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
                },
                |b| {
                    if both {
                        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
                    }
                },
            );
            b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
            b.ret();
            b.finish().unwrap()
        };
        let know = know1(16, 64, 4);
        let one_arm = analyze(&build(false), &know, elide_cfg());
        assert!(one_arm.elided_sites.is_empty());
        let both_arms = analyze(&build(true), &know, elide_cfg());
        assert_eq!(both_arms.elided_sites.len(), 1);
        assert_eq!(both_arms.elided_sites[0].0, BlockId(3), "the join block");
    }

    #[test]
    fn narrower_checks_do_not_cover_wider_accesses() {
        let mut b = KernelBuilder::new("k");
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let off = b.shl(tid, Operand::Imm(3));
        let _ = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(out, off));
        let _ = b.ld(MemSpace::Global, MemWidth::W8, b.base_offset(out, off));
        b.ret();
        let k = b.finish().unwrap();
        let bat = analyze(&k, &know1(16, 64, 4), elide_cfg());
        assert!(bat.elided_sites.is_empty(), "W8 exceeds the W4 check");
        // The other way around is covered.
        let mut b = KernelBuilder::new("k");
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let off = b.shl(tid, Operand::Imm(3));
        let _ = b.ld(MemSpace::Global, MemWidth::W8, b.base_offset(out, off));
        let _ = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(out, off));
        b.ret();
        let k = b.finish().unwrap();
        let bat = analyze(&k, &know1(16, 64, 4), elide_cfg());
        assert_eq!(bat.elided_sites.len(), 1);
    }

    #[test]
    fn site_origins_cover_every_resolvable_site() {
        let mut b = KernelBuilder::new("k");
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let off = b.shl(tid, Operand::Imm(2));
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
        b.ret();
        let k = b.finish().unwrap();
        let bat = analyze(&k, &know1(64 * 4, 16, 4), AnalysisConfig::default());
        assert_eq!(bat.site_origins.len(), 1);
        assert_eq!(
            bat.site_origins.values().next().copied(),
            Some(Origin::Param(0))
        );
    }

    #[test]
    fn atomics_are_classified_like_stores() {
        let mut b = KernelBuilder::new("k");
        let hist = b.param_buffer("hist", false);
        let tid = b.global_thread_id();
        let off = b.shl(tid, Operand::Imm(2));
        let _ = b.atom_add(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(hist, off),
            Operand::Imm(1),
        );
        b.ret();
        let k = b.finish().unwrap();
        let safe = analyze(&k, &know1(64 * 4, 16, 4), AnalysisConfig::default());
        assert_eq!(safe.sites_static, 1);
        let unsafe_ = analyze(&k, &know1(16, 16, 4), AnalysisConfig::default());
        assert_eq!(unsafe_.sites_runtime, 1);
        assert_eq!(unsafe_.violations.len(), 0, "some threads are in bounds");
    }
}
