//! Compiler-side static bounds analysis for GPUShield (paper §5.3).
//!
//! The analysis plays the role of the paper's LLVM passes: it walks each
//! memory instruction's address expression (the operand tree of Fig. 8),
//! evaluates it in an interval abstract domain seeded with launch-time
//! knowledge (buffer sizes, constant scalars, grid geometry), and decides
//! for every site whether the access is
//!
//! * **provably in bounds** → Type 1, runtime check elided;
//! * **checkable against an embedded size** → Type 3 (Method A/C
//!   addressing, §5.3.3);
//! * **only checkable at runtime** → Type 2 (RBT-indexed BCU check).
//!
//! Guaranteed violations are reported immediately as
//! [`StaticViolation`]s. The output [`BoundsAnalysis`] is the paper's
//! Bounds-Analysis Table: the driver consumes the pointer classes for
//! tagging and the simulator consumes the per-site [`gpushield_isa::CheckPlan`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod absval;
pub mod affine;
mod analysis;
mod bat;
mod interval;
pub mod relational;
pub mod verify;

pub use absval::{AbsVal, Origin};
pub use affine::Aff;
pub use analysis::{ArgInfo, LaunchKnowledge};
pub use bat::{analyze, AnalysisConfig, BoundsAnalysis, StaticViolation};
pub use interval::Interval;
pub use relational::{discharge, prove_sites, LinExpr, SiteProof};
pub use verify::{
    CheckBreakdown, Diagnostic, Pass, PassContext, PassManager, PassProfile, PassTiming, Severity,
    VerifyReport,
};
