//! Deterministic fault injection into the protection substrate.
//!
//! GPUShield's value proposition is surviving corrupted or adversarial
//! metadata, so the simulator can corrupt its own protection state mid-run
//! and observe how the system degrades. A [`FaultPlan`] is a seeded,
//! pre-generated schedule of corruptions; each [`FaultSpec`] fires when the
//! run's global-memory access counter reaches its trigger point. Because
//! the simulator is single-threaded and the access counter is part of the
//! deterministic execution order, the same plan against the same workload
//! produces byte-identical behaviour on every run and at any host thread
//! count.
//!
//! Four structures can be corrupted (see [`FaultKind`]): RBT entries in
//! device memory, the tag bits of a pointer under check, the BAT's
//! per-site check decision, and resident RCache entries. The harness on
//! top (the `fault_resilience` exhibit) classifies what each injection led
//! to: detection, a false fault, silent corruption, a watchdog-terminated
//! hang, or no observable effect.

use gpushield_isa::TaggedPtr;
use gpushield_mem::VirtualMemorySpace;
use gpushield_runtime::rng::StdRng;
use std::fmt;

/// Which protection-metadata structure a fault corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultKind {
    /// Flip one bit of a live RBT entry in device memory. Persistent: every
    /// later bounds fetch of that entry (after RCache eviction) sees the
    /// corrupted metadata.
    RbtBitFlip,
    /// XOR bits into the tag field (bits 63:48 — pointer class and
    /// encrypted region ID) of the pointer one check observes. Transient:
    /// models a soft error on the wires between AGU and BCU; the register
    /// file itself is not modified.
    TagMangle,
    /// Falsify the BAT `SiteCheck` record for one access: a statically
    /// proven site is downgraded to a runtime check, or a runtime site
    /// skips its check entirely.
    SiteCheckFalsify,
    /// Corrupt one resident L1/L2 RCache entry on the executing core.
    /// Persistent until that entry is evicted or flushed.
    RcachePoison,
}

impl FaultKind {
    /// Every fault kind, in sweep order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::RbtBitFlip,
        FaultKind::TagMangle,
        FaultKind::SiteCheckFalsify,
        FaultKind::RcachePoison,
    ];

    /// Stable machine-readable name (used in reports and results files).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::RbtBitFlip => "rbt-bit-flip",
            FaultKind::TagMangle => "tag-mangle",
            FaultKind::SiteCheckFalsify => "sitecheck-falsify",
            FaultKind::RcachePoison => "rcache-poison",
        }
    }

    /// Stable integer code for flight-recorder payloads.
    pub fn code(self) -> u8 {
        match self {
            FaultKind::RbtBitFlip => 0,
            FaultKind::TagMangle => 1,
            FaultKind::SiteCheckFalsify => 2,
            FaultKind::RcachePoison => 3,
        }
    }

    /// Inverse of [`FaultKind::code`].
    pub fn from_code(code: u8) -> Option<FaultKind> {
        FaultKind::ALL.get(usize::from(code)).copied()
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One scheduled corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What to corrupt.
    pub kind: FaultKind,
    /// Global-memory access sequence number at which the fault fires (the
    /// first access whose sequence number is `>= at_access` triggers it).
    pub at_access: u64,
    /// Deterministic entropy selecting the victim bit/entry.
    pub entropy: u64,
}

/// A seeded, pre-generated schedule of faults for one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan that injects nothing — running with it is behaviourally
    /// identical to an uninjected run.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// A plan holding exactly one fault.
    pub fn single(kind: FaultKind, at_access: u64, entropy: u64) -> Self {
        FaultPlan {
            specs: vec![FaultSpec {
                kind,
                at_access,
                entropy,
            }],
        }
    }

    /// Generates `count` faults drawn from `kinds`, with trigger points
    /// uniform in `[0, access_window)`. Fully determined by `seed`.
    pub fn generate(seed: u64, kinds: &[FaultKind], count: usize, access_window: u64) -> Self {
        assert!(!kinds.is_empty(), "no fault kinds to draw from");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut specs: Vec<FaultSpec> = (0..count)
            .map(|_| FaultSpec {
                kind: kinds[rng.gen_range(0..kinds.len() as u64) as usize],
                at_access: rng.gen_range(0..access_window.max(1)),
                entropy: rng.gen(),
            })
            .collect();
        // Stable sort: ties keep generation order, so the plan (and the
        // in-run injection order) is a pure function of the seed.
        specs.sort_by_key(|s| s.at_access);
        FaultPlan { specs }
    }

    /// The scheduled faults, sorted by trigger point.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// Addresses of protection metadata the injector may corrupt, precomputed
/// by the host layer (the driver knows the RBT layout; the simulator does
/// not need to).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultTargets {
    /// `(va, len)` of each live RBT entry in device memory.
    pub rbt_entries: Vec<(u64, u64)>,
}

/// One fault that came due during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionRecord {
    /// The scheduled fault.
    pub spec: FaultSpec,
    /// Cycle at which it fired.
    pub cycle: u64,
    /// Access sequence number at which it fired.
    pub access: u64,
    /// False when the fault had no possible victim (e.g. an RBT flip with
    /// no live entries, or an RCache poison with empty caches) and
    /// therefore corrupted nothing.
    pub applied: bool,
}

/// Live injection state threaded through one simulated run.
#[derive(Debug, Clone, Default)]
pub struct FaultSession {
    plan: FaultPlan,
    targets: FaultTargets,
    next: usize,
    access_seq: u64,
    injected: Vec<InjectionRecord>,
}

impl FaultSession {
    /// Builds a session from a plan and the metadata addresses it may hit.
    pub fn new(plan: FaultPlan, targets: FaultTargets) -> Self {
        FaultSession {
            plan,
            targets,
            next: 0,
            access_seq: 0,
            injected: Vec::new(),
        }
    }

    /// Consumes one access sequence number (called once per warp-level
    /// global-memory instruction) and returns it.
    pub(crate) fn begin_access(&mut self) -> u64 {
        let s = self.access_seq;
        self.access_seq += 1;
        s
    }

    /// Pops the next scheduled fault whose trigger point has been reached.
    pub(crate) fn take_due(&mut self, seq: u64) -> Option<FaultSpec> {
        let spec = *self.plan.specs.get(self.next)?;
        if spec.at_access <= seq {
            self.next += 1;
            Some(spec)
        } else {
            None
        }
    }

    /// The metadata addresses available to the injector.
    pub(crate) fn targets(&self) -> &FaultTargets {
        &self.targets
    }

    /// Records one fired fault.
    pub(crate) fn record(&mut self, spec: FaultSpec, cycle: u64, access: u64, applied: bool) {
        self.injected.push(InjectionRecord {
            spec,
            cycle,
            access,
            applied,
        });
    }

    /// True when the session's plan schedules nothing: no fault can ever
    /// come due, so a run under this session is equivalent to an
    /// unfaulted run.
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// Every fault that came due, in firing order.
    pub fn injected(&self) -> &[InjectionRecord] {
        &self.injected
    }

    /// Faults that actually corrupted something.
    pub fn applied_count(&self) -> usize {
        self.injected.iter().filter(|r| r.applied).count()
    }

    /// Scheduled faults that never came due (the run ended first).
    pub fn pending(&self) -> usize {
        self.plan.specs.len() - self.next
    }

    /// Global-memory accesses observed so far.
    pub fn accesses_observed(&self) -> u64 {
        self.access_seq
    }

    /// Deterministic one-line-per-fault textual log.
    pub fn log(&self) -> String {
        let mut out = String::new();
        for r in &self.injected {
            out.push_str(&format!(
                "{} at access {} (cycle {}){}\n",
                r.spec.kind,
                r.access,
                r.cycle,
                if r.applied { "" } else { " [no target]" }
            ));
        }
        out
    }
}

/// XORs 1–3 entropy-chosen bits into the tag field (bits 63:48) of `ptr`.
pub(crate) fn mangle_pointer(ptr: TaggedPtr, entropy: u64) -> TaggedPtr {
    let nbits = 1 + entropy % 3;
    let mut raw = ptr.raw();
    let mut e = entropy;
    for _ in 0..nbits {
        raw ^= 1u64 << (48 + (e % 16));
        e = e.rotate_right(11) ^ 0x9e37_79b9_7f4a_7c15;
    }
    TaggedPtr::from_raw(raw)
}

/// Flips one entropy-chosen bit of one live RBT entry via the
/// translation-bypass path (the same path the hardware uses). Returns
/// whether a bit was flipped.
pub(crate) fn flip_rbt_bit(
    vm: &mut VirtualMemorySpace,
    targets: &FaultTargets,
    entropy: u64,
) -> bool {
    if targets.rbt_entries.is_empty() {
        return false;
    }
    let (va, len) = targets.rbt_entries[(entropy as usize) % targets.rbt_entries.len()];
    if len == 0 {
        return false;
    }
    let bit = (entropy >> 8) % (len * 8);
    let byte_va = va + bit / 8;
    let mut b = [0u8; 1];
    if vm.read_bypass(byte_va, &mut b).is_err() {
        return false;
    }
    b[0] ^= 1 << (bit % 8);
    vm.write_bypass(byte_va, &b).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_generation_is_deterministic() {
        let a = FaultPlan::generate(42, &FaultKind::ALL, 16, 1000);
        let b = FaultPlan::generate(42, &FaultKind::ALL, 16, 1000);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a
            .specs()
            .windows(2)
            .all(|w| w[0].at_access <= w[1].at_access));
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let a = FaultPlan::generate(1, &FaultKind::ALL, 16, 1000);
        let b = FaultPlan::generate(2, &FaultKind::ALL, 16, 1000);
        assert_ne!(a, b);
    }

    #[test]
    fn session_fires_specs_in_order() {
        let plan = FaultPlan {
            specs: vec![
                FaultSpec {
                    kind: FaultKind::TagMangle,
                    at_access: 2,
                    entropy: 7,
                },
                FaultSpec {
                    kind: FaultKind::RbtBitFlip,
                    at_access: 2,
                    entropy: 9,
                },
                FaultSpec {
                    kind: FaultKind::RcachePoison,
                    at_access: 5,
                    entropy: 1,
                },
            ],
        };
        let mut s = FaultSession::new(plan, FaultTargets::default());
        assert_eq!(s.take_due(0), None);
        assert_eq!(s.take_due(2).unwrap().entropy, 7);
        assert_eq!(s.take_due(2).unwrap().entropy, 9);
        assert_eq!(s.take_due(2), None);
        assert_eq!(s.take_due(9).unwrap().entropy, 1, "late faults still fire");
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn mangle_changes_only_tag_bits() {
        let p = TaggedPtr::unprotected(0x1234_5678);
        for e in 0..64u64 {
            let m = mangle_pointer(p, e.wrapping_mul(0x9E37_79B9));
            assert_eq!(m.va(), p.va(), "VA bits untouched");
            assert_ne!(m.raw(), p.raw(), "tag bits changed");
        }
    }

    #[test]
    fn rbt_flip_without_targets_is_a_noop() {
        let mut vm = VirtualMemorySpace::new();
        assert!(!flip_rbt_bit(&mut vm, &FaultTargets::default(), 123));
    }

    #[test]
    fn empty_plan_session_observes_but_never_fires() {
        let mut s = FaultSession::new(FaultPlan::empty(), FaultTargets::default());
        for _ in 0..10 {
            let seq = s.begin_access();
            assert_eq!(s.take_due(seq), None);
        }
        assert_eq!(s.accesses_observed(), 10);
        assert!(s.injected().is_empty());
    }
}
