//! Deterministic cycle-quantum parallel engine.
//!
//! [`run_engine`] advances the GPU in fixed *quanta* of [`QUANTUM`]
//! simulated cycles. Inside a quantum, every SIMT core is advanced
//! independently — a crew of worker threads claims cores from a shared
//! counter — against an **immutable snapshot** of the shared memory
//! system: per-core L1/L1-TLB state mutates live (it is core-private),
//! while L2/L2-TLB hits are *predicted* with side-effect-free probes and
//! DRAM timing with a private per-core [`DramView`]. Every side effect
//! that crosses core boundaries (L2/DRAM state, trace records, launch
//! counters, aborts) is buffered in a per-core outbox with a `(cycle,
//! core, seq)` key.
//!
//! At the quantum barrier the driver thread *drains* the outboxes: it
//! merges counters in core order, sorts the buffered events by their
//! canonical key, and replays them against the real shared memory system.
//! Because the canonical order is a pure function of simulated time — not
//! of which worker ran first — every scheduling decision, cache state
//! transition, verdict and cycle count is identical for every worker
//! count, including one.
//!
//! Three operations are not executed inside the phase at all because they
//! touch globally shared *mutable* state: device-heap `malloc`/`free`
//! (the serialized allocator lock) and global-memory atomics (read-
//! modify-write ordering). Issuing one *parks* the warp (`ready_at =
//! u64::MAX`, pc not advanced); the drain re-derives the instruction from
//! the frozen warp state and executes it with the legacy sequential
//! semantics at its recorded issue cycle, in canonical order.
//!
//! Model deltas vs. the sequential engine (all deterministic): workgroup
//! dispatch happens at quantum boundaries; an abort strips the launch at
//! the end of its quantum, so other cores may execute up to one quantum
//! of extra instructions for an aborting launch; L2/L2-TLB/DRAM timing
//! seen by a warp is the quantum-start prediction rather than the
//! serially-interleaved value. Plain (non-atomic) global accesses by
//! *different* cores to the *same* location inside one quantum are data
//! races in the programming model and take no defined interleaving.

use super::{
    build_launch_states, Core, GpuConfig, HeapRun, LaunchState, MultiKernelMode, ResidentWg,
    RunError, TeleCtx, VA_MASK,
};
use crate::guard::{CoreGuard, GuardCheck, GuardVerdict, MemAccess, MemGuard};
use crate::launch::{KernelLaunch, SiteCheck};
use crate::stats::{AbortReason, LaunchReport, RunReport, SimProfile, StallAttribution};
use crate::trace::{Trace, TraceEvent, TraceKind};
use crate::warp::{ExecCtx, SimpleOutcome, Warp};
use gpushield_isa::{AddrExpr, BlockId, Instr, MemSpace, Operand, TaggedPtr, VReg};
use gpushield_mem::coalesce::warp_address_range;
use gpushield_mem::{
    coalesce_warp_into, DramView, MemFault, SharedMemorySystem, VirtualMemorySpace,
};
use gpushield_runtime::with_crew;
use gpushield_telemetry::flight::{FlightEvent, FlightRecorder};
use gpushield_telemetry::{MetricId, Registry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{LockResult, Mutex, RwLock};

/// Simulated cycles per parallel phase. Large enough to amortize the
/// barrier + drain, small enough that the boundary-only dispatch and the
/// quantum-granular abort stay close to the sequential model.
const QUANTUM: u64 = 64;

/// Unwraps a lock result, adopting the data on poisoning. A poisoned lock
/// here means a worker panicked mid-quantum; the crew re-raises that
/// panic on the driver thread, so pressing on with the inner data never
/// publishes results built from the poisoned state.
fn lock_ok<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Per-launch counter deltas accumulated core-locally during a phase and
/// folded into the real [`LaunchReport`]s at the drain, in core order.
#[derive(Default)]
struct LaunchAcc {
    instructions: u64,
    mem_instructions: u64,
    transactions: u64,
    checks_performed: u64,
    checks_skipped: u64,
    checks_certified: u64,
    guard_stall_cycles: u64,
    violations_squashed: u64,
    stall_attribution: StallAttribution,
}

impl LaunchAcc {
    fn drain_into(&mut self, r: &mut LaunchReport) {
        r.instructions += self.instructions;
        r.mem_instructions += self.mem_instructions;
        r.transactions += self.transactions;
        r.checks_performed += self.checks_performed;
        r.checks_skipped += self.checks_skipped;
        r.checks_certified += self.checks_certified;
        r.guard_stall_cycles += self.guard_stall_cycles;
        r.violations_squashed += self.violations_squashed;
        r.stall_attribution.merge(&self.stall_attribution);
        *self = LaunchAcc::default();
    }
}

/// One buffered cross-core side effect, stamped with its issue cycle and
/// a per-core sequence number so the drain can replay the quantum in a
/// canonical total order.
#[derive(Clone, Copy)]
struct QEv {
    t: u64,
    seq: u32,
    ev: Ev,
}

#[derive(Clone, Copy)]
enum Ev {
    /// An L1-missing data transaction to replay against the real L2/DRAM.
    Data(u64),
    /// An L1-TLB-missing translation to replay against the real shared TLB.
    Xlate(u64),
    /// A warp parked on a serialized operation (malloc/free/global atomic),
    /// identified by (launch, workgroup, warp-in-wg) because warp indices
    /// shift when workgroups retire.
    Parked { li: u32, wg: u64, win: u32 },
    /// A workgroup of launch `li` fully retired on its core.
    Retired { li: u32 },
    /// The launch must abort (bounds violation or translation fault).
    /// Carries the guilty warp's identity for the flight recorder — the
    /// warp itself is stripped by the time the drain applies the abort.
    Abort {
        li: u32,
        wg: u64,
        win: u32,
        reason: AbortReason,
    },
    /// A buffered trace record.
    Trace(TraceEvent),
    /// A buffered flight-recorder event, replayed into the recorder in
    /// canonical order so the stream is identical for every worker count.
    Flight(FlightEvent),
}

/// A drained event: [`QEv`] plus its core, forming the canonical sort key
/// `(t, core, seq)`.
struct DrainKey {
    t: u64,
    core: u32,
    seq: u32,
    ev: Ev,
}

/// Everything a core accumulates during one phase; cleared (capacity
/// kept) by the drain, so steady-state quanta allocate nothing.
#[derive(Default)]
struct Outbox {
    evs: Vec<QEv>,
    seq: u32,
    profile: SimProfile,
    accs: Vec<LaunchAcc>,
    /// Visible bounds-check stalls, in issue order, for the telemetry
    /// histogram (observed at the drain in core order).
    stalls: Vec<u64>,
    no_issue: u64,
    /// Instructions issued (including parks) this quantum.
    issued: u64,
    /// Cycles with at least one issue this quantum — the per-core load
    /// signal behind `sim.parallel.*` skew telemetry.
    busy: u64,
}

impl Outbox {
    /// An outbox with its buffers sized for a full quantum up front, so a
    /// run pays one warm-up allocation per buffer instead of replaying the
    /// `Vec` doubling ladder — workloads made of many short launches
    /// (one `run` each) would otherwise pay that ladder per launch.
    fn for_run(n_launches: usize) -> Self {
        let mut out = Outbox {
            evs: Vec::with_capacity(QUANTUM as usize * 24),
            stalls: Vec::with_capacity(QUANTUM as usize * 2),
            ..Outbox::default()
        };
        out.accs.resize_with(n_launches, LaunchAcc::default);
        out
    }
}

/// One core's share of the machine: the simulated core itself, its
/// outbox, its forked guard shard (when the guard supports forking), and
/// its private DRAM timing view (refreshed from the real DRAM after every
/// drain).
struct CoreSlot<'g> {
    core: Core,
    out: Outbox,
    shard: Option<Box<dyn CoreGuard + Send + 'g>>,
    dram_view: DramView,
}

/// How a phase consults the bounds-check guard. Forked guards hand each
/// core an independent shard; a non-forkable guard is shared behind a
/// mutex, and the engine then runs single-worker so the check order stays
/// canonical (core-major), which keeps results identical to the forked
/// layout's per-core sequences.
enum PhaseCheck<'a, 's, 'w, 'g> {
    None,
    Shard(&'a mut (dyn CoreGuard + Send + 's)),
    Whole(&'a Mutex<&'w mut (dyn MemGuard + 'g)>),
}

impl PhaseCheck<'_, '_, '_, '_> {
    fn some(&self) -> bool {
        !matches!(self, PhaseCheck::None)
    }

    fn check(&mut self, access: &MemAccess, vm: &VirtualMemorySpace) -> GuardCheck {
        match self {
            PhaseCheck::None => GuardCheck::allow_free(),
            PhaseCheck::Shard(g) => g.check(access, vm),
            PhaseCheck::Whole(m) => lock_ok(m.lock()).check(access, vm),
        }
    }
}

/// The sequential engine's telemetry hooks plus the parallel-engine
/// additions: quantum count, worst per-quantum busy-cycle skew between
/// cores, and per-core busy-cycle gauges. Keyed per *core* (not per
/// worker) so the published values are independent of how cores were
/// claimed by threads.
struct ParTele<'t> {
    base: TeleCtx<'t>,
    quantum_count: MetricId,
    max_skew: MetricId,
    busy: Vec<MetricId>,
}

impl<'t> ParTele<'t> {
    fn new(reg: &'t mut Registry, num_cores: usize) -> Self {
        let quantum_count = reg.counter("sim.parallel.quantum_count");
        let max_skew = reg.gauge("sim.parallel.max_skew_cycles");
        let busy = (0..num_cores)
            .map(|i| reg.gauge(&format!("sim.parallel.cluster.{i}.busy_cycles")))
            .collect();
        ParTele {
            base: TeleCtx::new(reg),
            quantum_count,
            max_skew,
            busy,
        }
    }
}

fn push_ev(out: &mut Outbox, t: u64, ev: Ev) {
    let seq = out.seq;
    out.seq += 1;
    out.evs.push(QEv { t, seq, ev });
}

#[allow(clippy::too_many_arguments)]
fn push_trace(
    out: &mut Outbox,
    want_trace: bool,
    t: u64,
    core: usize,
    li: usize,
    wg: u64,
    warp: usize,
    site: Option<(BlockId, usize)>,
    kind: TraceKind,
) {
    if want_trace {
        push_ev(
            out,
            t,
            Ev::Trace(TraceEvent {
                cycle: t,
                core,
                launch: li,
                wg,
                warp,
                site,
                kind,
            }),
        );
    }
}

/// Greedy-then-oldest warp pick at cycle `t` — the sequential scheduler's
/// policy verbatim, evaluated against core-local state only.
fn pick_warp_at(core: &Core, t: u64) -> Option<usize> {
    let ready = |w: &Warp| !w.done && !w.at_barrier && !w.blocked && w.ready_at <= t;
    if let Some(i) = core.last_issued {
        if let Some(w) = core.warps.get(i) {
            if ready(w) {
                return Some(i);
            }
        }
    }
    core.warps
        .iter()
        .enumerate()
        .filter(|(_, w)| ready(w))
        .min_by_key(|(_, w)| w.age)
        .map(|(i, _)| i)
}

fn recompute_next_ready(core: &Core) -> u64 {
    core.warps
        .iter()
        .filter(|w| !w.done && !w.at_barrier && !w.blocked)
        .map(|w| w.ready_at)
        .min()
        .unwrap_or(u64::MAX)
}

/// Timing prediction for a translation that missed the core's L1 TLB:
/// the sequential `SharedMemorySystem::translate` arithmetic, with the
/// snapshot probe standing in for the L2 TLB access and the core's
/// private DRAM view standing in for the shared channels.
fn predict_translate(shared: &SharedMemorySystem, dv: &mut DramView, va: u64, now: u64) -> u64 {
    let tm = shared.timings();
    let at_l2 = now + tm.l2_tlb_hit;
    if shared.l2_tlb().probe(va) {
        at_l2
    } else {
        dv.access((va >> 12) * 8, at_l2 + tm.walk)
    }
}

/// Timing prediction for a data transaction that missed the core's L1
/// Dcache (sequential `access_data` arithmetic against the snapshot).
fn predict_data(shared: &SharedMemorySystem, dv: &mut DramView, pa: u64, now: u64) -> u64 {
    let tm = shared.timings();
    let at_l2 = now + tm.l2_hit;
    if shared.l2().probe(pa) {
        at_l2
    } else {
        dv.access(pa, at_l2)
    }
}

/// Advances one core from `t0` to `t1`: the per-cycle issue loop of the
/// sequential engine, restricted to core-local state + the snapshot.
#[allow(clippy::too_many_arguments)]
fn advance_core(
    cfg: &GpuConfig,
    t0: u64,
    t1: u64,
    core: &mut Core,
    out: &mut Outbox,
    check: &mut PhaseCheck<'_, '_, '_, '_>,
    dram_view: &mut DramView,
    launches: &[LaunchState],
    shared: &SharedMemorySystem,
    vm: &VirtualMemorySpace,
    core_idx: usize,
    want_trace: bool,
    want_flight: bool,
) {
    if out.accs.len() != launches.len() {
        out.accs.resize_with(launches.len(), LaunchAcc::default);
    }
    let mut t = t0;
    while t < t1 {
        if core.next_ready_at > t {
            if core.next_ready_at >= t1 {
                break;
            }
            t = core.next_ready_at;
            continue;
        }
        let mut issued = false;
        for _ in 0..cfg.issue_width {
            match pick_warp_at(core, t) {
                Some(wi) => {
                    core.last_issued = Some(wi);
                    exec_warp_phase(
                        cfg,
                        t,
                        core,
                        out,
                        check,
                        dram_view,
                        launches,
                        shared,
                        vm,
                        core_idx,
                        want_trace,
                        want_flight,
                        wi,
                    );
                    out.issued += 1;
                    issued = true;
                }
                None => {
                    out.no_issue += 1;
                    core.next_ready_at = recompute_next_ready(core);
                    break;
                }
            }
        }
        if issued {
            out.busy += 1;
        }
        t += 1;
    }
}

fn exec_ctx(ls: &LaunchState) -> ExecCtx<'_> {
    ExecCtx {
        args: &ls.launch.args,
        local_bases: &ls.launch.local_bases,
        block_dim: u64::from(ls.launch.launch.block),
        grid_dim: u64::from(ls.launch.launch.grid),
    }
}

/// Parks a warp on a serialized operation: frozen in place (pc not
/// advanced) until the drain re-derives and executes the instruction.
fn park_warp(out: &mut Outbox, t: u64, core: &mut Core, wi: usize) {
    let w = &mut core.warps[wi];
    w.ready_at = u64::MAX;
    push_ev(
        out,
        t,
        Ev::Parked {
            li: w.launch_idx as u32,
            wg: w.wg,
            win: w.warp_in_wg as u32,
        },
    );
}

/// Freezes a warp that triggered an abort verdict; the drain strips the
/// whole launch when (and only when) this event is first in canonical
/// order for that launch.
fn freeze_abort(
    out: &mut Outbox,
    t: u64,
    core: &mut Core,
    wi: usize,
    li: usize,
    reason: AbortReason,
) {
    let (wg, win) = {
        let w = &mut core.warps[wi];
        w.ready_at = u64::MAX;
        (w.wg, w.warp_in_wg as u32)
    };
    push_ev(
        out,
        t,
        Ev::Abort {
            li: li as u32,
            wg,
            win,
            reason,
        },
    );
}

#[allow(clippy::too_many_arguments)]
fn exec_warp_phase(
    cfg: &GpuConfig,
    t: u64,
    core: &mut Core,
    out: &mut Outbox,
    check: &mut PhaseCheck<'_, '_, '_, '_>,
    dram_view: &mut DramView,
    launches: &[LaunchState],
    shared: &SharedMemorySystem,
    vm: &VirtualMemorySpace,
    core_idx: usize,
    want_trace: bool,
    want_flight: bool,
    wi: usize,
) {
    let li = core.warps[wi].launch_idx;
    let outcome = {
        let ls = &launches[li];
        let ctx = exec_ctx(ls);
        core.warps[wi].exec_simple(&ls.launch.kernel, &ls.recon, &ctx)
    };
    match outcome {
        SimpleOutcome::Done => {
            out.profile.alu_issues += 1;
            out.accs[li].instructions += 1;
            core.warps[wi].ready_at = t + cfg.alu_latency;
        }
        SimpleOutcome::Retired => {
            out.profile.alu_issues += 1;
            out.accs[li].instructions += 1;
            retire_warp_phase(cfg, t, core, out, launches, core_idx, want_trace, wi);
        }
        SimpleOutcome::NeedsCore => {
            let pc = core.warps[wi].pc().expect("NeedsCore implies a live pc");
            let instr = launches[li].launch.kernel.block(pc.0).instrs()[pc.1];
            match instr {
                Instr::Bar => {
                    exec_barrier_phase(t, core, out, core_idx, want_trace, wi, li);
                }
                Instr::Malloc { .. } | Instr::Free { .. } => park_warp(out, t, core, wi),
                Instr::Ld { .. } | Instr::St { .. } | Instr::AtomAdd { .. } => {
                    exec_mem_phase(
                        cfg,
                        t,
                        core,
                        out,
                        check,
                        dram_view,
                        launches,
                        shared,
                        vm,
                        core_idx,
                        want_trace,
                        want_flight,
                        wi,
                        li,
                        pc,
                        instr,
                    );
                }
                _ => unreachable!("exec_simple handles all other instructions"),
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn retire_warp_phase(
    cfg: &GpuConfig,
    t: u64,
    core: &mut Core,
    out: &mut Outbox,
    launches: &[LaunchState],
    core_idx: usize,
    want_trace: bool,
    wi: usize,
) {
    let (li, wg, win) = {
        let w = &core.warps[wi];
        (w.launch_idx, w.wg, w.warp_in_wg)
    };
    push_trace(
        out,
        want_trace,
        t,
        core_idx,
        li,
        wg,
        win,
        None,
        TraceKind::Retire,
    );
    release_barrier_at(core, li, wg, t);
    let wg_done = core
        .warps
        .iter()
        .filter(|w| w.launch_idx == li && w.wg == wg)
        .all(|w| w.done);
    if wg_done {
        let freed_regs = launches[li].warps_per_wg
            * usize::from(launches[li].launch.kernel.num_regs())
            * cfg.warp_width;
        let freed_shared: u64 = core
            .wgs
            .iter()
            .filter(|g| g.launch_idx == li && g.wg == wg)
            .map(|g| g.shared.len() as u64)
            .sum();
        core.warps.retain(|w| !(w.launch_idx == li && w.wg == wg));
        core.wgs.retain(|g| !(g.launch_idx == li && g.wg == wg));
        core.last_issued = None;
        core.regs_used = core.regs_used.saturating_sub(freed_regs);
        core.shared_used = core.shared_used.saturating_sub(freed_shared);
        push_ev(out, t, Ev::Retired { li: li as u32 });
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_barrier_phase(
    t: u64,
    core: &mut Core,
    out: &mut Outbox,
    core_idx: usize,
    want_trace: bool,
    wi: usize,
    li: usize,
) {
    let (wg, win) = {
        let w = &mut core.warps[wi];
        w.at_barrier = true;
        w.advance_pc();
        (w.wg, w.warp_in_wg)
    };
    out.profile.barrier_issues += 1;
    out.accs[li].instructions += 1;
    push_trace(
        out,
        want_trace,
        t,
        core_idx,
        li,
        wg,
        win,
        None,
        TraceKind::Barrier,
    );
    release_barrier_at(core, li, wg, t);
}

fn release_barrier_at(core: &mut Core, li: usize, wg: u64, t: u64) {
    let all_arrived = core
        .warps
        .iter()
        .filter(|w| w.launch_idx == li && w.wg == wg && !w.done)
        .all(|w| w.at_barrier);
    let any_waiting = core
        .warps
        .iter()
        .any(|w| w.launch_idx == li && w.wg == wg && w.at_barrier);
    if all_arrived && any_waiting {
        for w in core
            .warps
            .iter_mut()
            .filter(|w| w.launch_idx == li && w.wg == wg && w.at_barrier)
        {
            w.at_barrier = false;
            w.ready_at = t + 1;
        }
    }
}

/// The LSU pipeline for one warp-level memory instruction inside a phase.
/// Shared-memory accesses are entirely core-local and run to completion;
/// global loads/stores run functionally against the (lock-free) VM with
/// snapshot-predicted timing; global atomics park for the drain.
#[allow(clippy::too_many_arguments)]
fn exec_mem_phase(
    cfg: &GpuConfig,
    t: u64,
    core: &mut Core,
    out: &mut Outbox,
    check: &mut PhaseCheck<'_, '_, '_, '_>,
    dram_view: &mut DramView,
    launches: &[LaunchState],
    shared: &SharedMemorySystem,
    vm: &VirtualMemorySpace,
    core_idx: usize,
    want_trace: bool,
    want_flight: bool,
    wi: usize,
    li: usize,
    site: (BlockId, usize),
    instr: Instr,
) {
    let (is_store, addr, space, width, dst, src, is_atomic) = match instr {
        Instr::Ld {
            dst,
            addr,
            space,
            width,
        } => (false, addr, space, width, Some(dst), None, false),
        Instr::St {
            src,
            addr,
            space,
            width,
        } => (true, addr, space, width, None, Some(src), false),
        Instr::AtomAdd {
            dst,
            addr,
            space,
            width,
            src,
        } => (true, addr, space, width, Some(dst), Some(src), true),
        _ => unreachable!("exec_mem_phase only receives Ld/St/AtomAdd"),
    };
    if is_atomic && space != MemSpace::Shared {
        // Global read-modify-writes are serialized machine-wide; the
        // drain executes them in canonical order.
        park_warp(out, t, core, wi);
        return;
    }
    let width_b = width.bytes();
    let mut scratch = std::mem::take(&mut core.scratch);

    // ---- AGU: per-lane addresses and store values (sequential logic) ----
    let ptr = {
        let ctx = exec_ctx(&launches[li]);
        let warp = &core.warps[wi];
        scratch.lane_vas.clear();
        scratch.lane_vas.resize(warp.width, None);
        let mut ptr = TaggedPtr::from_raw(0);
        let mut ptr_set = false;
        #[allow(clippy::needless_range_loop)] // lane drives eval() too
        for lane in 0..warp.width {
            if !warp.lane_active(lane) {
                continue;
            }
            let (base_raw, off) = match addr {
                AddrExpr::Flat { addr } => (warp.eval(addr, lane, &ctx), 0u64),
                AddrExpr::BaseOffset { base, offset } => {
                    (warp.eval(base, lane, &ctx), warp.eval(offset, lane, &ctx))
                }
                AddrExpr::BindingTable { bti, offset } => {
                    (ctx.args[usize::from(bti)], warp.eval(offset, lane, &ctx))
                }
            };
            if !ptr_set {
                ptr = TaggedPtr::from_raw(base_raw);
                ptr_set = true;
            }
            let va = if space == MemSpace::Shared {
                base_raw.wrapping_add(off)
            } else {
                TaggedPtr::from_raw(base_raw).va().wrapping_add(off) & VA_MASK
            };
            scratch.lane_vas[lane] = Some(va);
        }
        scratch.store_vals.clear();
        if let Some(s) = src {
            scratch
                .store_vals
                .extend((0..warp.width).map(|lane| warp.eval(s, lane, &ctx)));
        }
        ptr
    };
    let has_store_vals = src.is_some();

    if space == MemSpace::Shared {
        exec_shared_phase(
            cfg,
            t,
            core,
            out,
            core_idx,
            want_trace,
            wi,
            li,
            &scratch.lane_vas,
            width_b,
            dst,
            has_store_vals.then_some(&scratch.store_vals[..]),
            is_atomic,
        );
        core.scratch = scratch;
        return;
    }

    // ---- Translate + timing against the quantum-start snapshot ----------
    let mut translation_fault: Option<MemFault> = None;
    for va in scratch.lane_vas.iter().flatten() {
        if let Err(f) = vm.translate(*va) {
            translation_fault.get_or_insert(f);
        }
    }
    coalesce_warp_into(&scratch.lane_vas, width_b, &mut scratch.txs);
    let start = t.max(core.lsu_busy_until);
    let mut done_at = start + cfg.timings.l1_hit;
    let mut all_l1_hit = true;
    for tx in &scratch.txs {
        let Ok(pa) = vm.translate_bypass(tx.base) else {
            continue;
        };
        let t_ready = if core.l1tlb.access(tx.base) {
            start
        } else {
            push_ev(out, start, Ev::Xlate(tx.base));
            predict_translate(shared, dram_view, tx.base, start)
        };
        let tx_done = if core.l1d.access(pa) {
            (start + cfg.timings.l1_hit).max(t_ready + 1)
        } else {
            all_l1_hit = false;
            let at = (start + cfg.timings.l1_hit).max(t_ready);
            push_ev(out, at, Ev::Data(pa));
            predict_data(shared, dram_view, pa, at)
        };
        done_at = done_at.max(tx_done);
    }

    // ---- Bounds check via the core's shard (or the whole guard) ---------
    let decision = launches[li].launch.plan.get(site);
    let mut stall = 0u64;
    let mut verdict = GuardVerdict::Allow;
    if check.some() {
        if decision == SiteCheck::Static {
            out.accs[li].checks_skipped += 1;
            if launches[li].launch.plan.certified(site) {
                out.accs[li].checks_certified += 1;
            }
        } else if let Some(range) = warp_address_range(&scratch.lane_vas, width_b) {
            let access = MemAccess {
                core: core_idx,
                kernel_id: launches[li].launch.kernel_id,
                is_store,
                space,
                pointer: ptr,
                site,
                range,
                site_check: decision,
                transactions: scratch.txs.len(),
                active_lanes: scratch.lane_vas.iter().flatten().count(),
                l1d_all_hit: all_l1_hit,
            };
            let chk = check.check(&access, vm);
            stall = chk.stall_cycles;
            verdict = chk.verdict;
            out.profile.bcu_checks += 1;
            out.accs[li].checks_performed += 1;
            out.accs[li]
                .stall_attribution
                .record(chk.path, chk.stall_cycles);
            if want_flight {
                let w = &core.warps[wi];
                push_ev(
                    out,
                    t,
                    Ev::Flight(FlightEvent::CheckVerdict {
                        kernel_id: launches[li].launch.kernel_id,
                        wg: w.wg as u32,
                        warp: w.warp_in_wg as u16,
                        block: site.0 .0,
                        idx: site.1 as u32,
                        path: chk.path.code(),
                        verdict: chk.verdict.code(),
                        is_store,
                        lo: range.0,
                        hi: range.1,
                    }),
                );
            }
        }
    }

    // ---- Outcome --------------------------------------------------------
    match verdict {
        GuardVerdict::Fault => {
            core.scratch = scratch;
            freeze_abort(out, t, core, wi, li, AbortReason::BoundsViolation);
            return;
        }
        GuardVerdict::Squash => {
            out.accs[li].violations_squashed += 1;
            if let Some(d) = dst {
                let warp = &mut core.warps[wi];
                for lane in 0..warp.width {
                    if warp.lane_active(lane) {
                        warp.set_reg(d, lane, 0);
                    }
                }
            }
        }
        GuardVerdict::Allow => {
            if let Some(f) = translation_fault {
                core.scratch = scratch;
                freeze_abort(out, t, core, wi, li, AbortReason::MemFault(f));
                return;
            }
            let warp_width = core.warps[wi].width;
            for (lane, lane_va) in scratch.lane_vas.iter().enumerate().take(warp_width) {
                let Some(va) = *lane_va else { continue };
                // The pre-check translated every lane VA, so a fault here
                // means the mapping changed under us (e.g. host-injected
                // metadata corruption) — degrade into the same typed abort
                // a translation fault takes, never a panic.
                if is_store {
                    let v = scratch.store_vals[lane];
                    if let Err(f) = vm.write_uint(va, width_b, v) {
                        core.scratch = scratch;
                        freeze_abort(out, t, core, wi, li, AbortReason::MemFault(f));
                        return;
                    }
                } else {
                    let v = match vm.read_uint(va, width_b) {
                        Ok(v) => v,
                        Err(f) => {
                            core.scratch = scratch;
                            freeze_abort(out, t, core, wi, li, AbortReason::MemFault(f));
                            return;
                        }
                    };
                    // A load without a destination is dropped by decode, so
                    // `dst` is always present here; skip defensively rather
                    // than assert.
                    let Some(d) = dst else { continue };
                    let warp = &mut core.warps[wi];
                    warp.set_reg(d, lane, v);
                }
            }
        }
    }

    // ---- Timing commit --------------------------------------------------
    {
        let w = &core.warps[wi];
        let (wgid, win) = (w.wg, w.warp_in_wg);
        push_trace(
            out,
            want_trace,
            t,
            core_idx,
            li,
            wgid,
            win,
            Some(site),
            TraceKind::Mem {
                space,
                is_store,
                transactions: scratch.txs.len().min(255) as u8,
                stall: stall.min(255) as u8,
            },
        );
    }
    let n_txs = scratch.txs.len() as u64;
    core.lsu_busy_until = start + n_txs + stall;
    let warp = &mut core.warps[wi];
    warp.ready_at = done_at + stall;
    warp.advance_pc();
    core.scratch = scratch;
    out.profile.mem_issues += 1;
    out.profile.lsu_transactions += n_txs;
    out.profile.bcu_stall_cycles += stall;
    out.stalls.push(stall);
    let acc = &mut out.accs[li];
    acc.instructions += 1;
    acc.mem_instructions += 1;
    acc.transactions += n_txs;
    acc.guard_stall_cycles += stall;
}

/// Shared-memory access: on-chip, core-local, no VM, no bounds checking —
/// the sequential `exec_shared_mem` verbatim against core-local state.
#[allow(clippy::too_many_arguments)]
fn exec_shared_phase(
    cfg: &GpuConfig,
    t: u64,
    core: &mut Core,
    out: &mut Outbox,
    core_idx: usize,
    want_trace: bool,
    wi: usize,
    li: usize,
    lane_vas: &[Option<u64>],
    width_b: u64,
    dst: Option<VReg>,
    store_vals: Option<&[u64]>,
    is_atomic: bool,
) {
    out.profile.shared_issues += 1;
    let wg = core.warps[wi].wg;
    let start = t.max(core.lsu_busy_until);
    let done_at = start + cfg.timings.l1_hit;
    let wg_idx = core
        .wgs
        .iter()
        .position(|g| g.launch_idx == li && g.wg == wg)
        .expect("warp's workgroup is resident");
    let (wgs, warps) = (&mut core.wgs, &mut core.warps);
    let sh = &mut wgs[wg_idx].shared;
    let warp = &mut warps[wi];
    let n = sh.len() as u64;
    for (lane, va) in lane_vas.iter().enumerate() {
        let Some(va) = va else { continue };
        if n == 0 {
            if let Some(d) = dst {
                warp.set_reg(d, lane, 0);
            }
            continue;
        }
        if is_atomic {
            // Decode always materialises an addend vector for atomics; a
            // missing one is treated as adding zero rather than a panic.
            let mut old_bytes = [0u8; 8];
            for i in 0..width_b {
                old_bytes[i as usize] = sh[((va + i) % n) as usize];
            }
            let old = u64::from_le_bytes(old_bytes);
            let add = store_vals.map_or(0, |vals| vals[lane]);
            let new_bytes = old.wrapping_add(add).to_le_bytes();
            for i in 0..width_b {
                sh[((va + i) % n) as usize] = new_bytes[i as usize];
            }
            if let Some(d) = dst {
                warp.set_reg(d, lane, old);
            }
            continue;
        }
        let mut bytes = [0u8; 8];
        for i in 0..width_b {
            let idx = ((va + i) % n) as usize;
            if let Some(vals) = store_vals {
                sh[idx] = vals[lane].to_le_bytes()[i as usize];
            } else {
                bytes[i as usize] = sh[idx];
            }
        }
        if let Some(d) = dst {
            warp.set_reg(d, lane, u64::from_le_bytes(bytes));
        }
    }
    core.lsu_busy_until = start + 1;
    let warp = &mut core.warps[wi];
    warp.ready_at = done_at;
    warp.advance_pc();
    let (wgid, win) = (warp.wg, warp.warp_in_wg);
    push_trace(
        out,
        want_trace,
        t,
        core_idx,
        li,
        wgid,
        win,
        None,
        TraceKind::Mem {
            space: MemSpace::Shared,
            is_store: store_vals.is_some(),
            transactions: 1,
            stall: 0,
        },
    );
    let acc = &mut out.accs[li];
    acc.instructions += 1;
    acc.mem_instructions += 1;
}

/// Runs `launches` to completion on the cycle-quantum engine. The
/// entry point behind [`super::Gpu::run`], [`super::Gpu::run_multi`],
/// [`super::Gpu::run_traced`] and [`super::Gpu::run_instrumented`];
/// fault-injected and observed-range runs keep the sequential engine.
#[allow(clippy::too_many_arguments)]
pub(super) fn run_engine(
    cfg: &GpuConfig,
    vm: &mut VirtualMemorySpace,
    shared: &mut SharedMemorySystem,
    launches: &[KernelLaunch],
    mode: MultiKernelMode,
    mut guard: Option<&mut dyn MemGuard>,
    trace: Option<&mut Trace>,
    registry: Option<&mut Registry>,
    flight: Option<&mut FlightRecorder>,
) -> Result<RunReport, RunError> {
    let ls = build_launch_states(cfg, launches)?;
    let n = cfg.num_cores;
    let vm: &VirtualMemorySpace = vm;

    // A forkable guard always runs sharded — even single-threaded — so the
    // per-core check sequences are the same for every worker count. A
    // non-forkable guard is shared behind a mutex and forces one worker,
    // which keeps its global check order canonical (core-major).
    let (forked, whole) = match guard.as_deref_mut() {
        Some(g) if g.supports_fork(n) => (
            Some(
                g.fork_cores(n)
                    .expect("supports_fork implies fork_cores succeeds"),
            ),
            None,
        ),
        Some(g) => (None, Some(Mutex::new(g))),
        None => (None, None),
    };
    let workers = if whole.is_some() {
        1
    } else {
        cfg.sim_threads.clamp(1, n)
    };

    let mut shards: Vec<Option<Box<dyn CoreGuard + Send + '_>>> = forked.map_or_else(
        || (0..n).map(|_| None).collect(),
        |v| v.into_iter().map(Some).collect(),
    );
    let slots: Vec<Mutex<CoreSlot<'_>>> = (0..n)
        .map(|i| {
            Mutex::new(CoreSlot {
                core: Core::new(cfg),
                out: Outbox::for_run(launches.len()),
                shard: shards[i].take(),
                dram_view: shared.dram().view(),
            })
        })
        .collect();
    drop(shards); // all `None` now; ends its borrow of the guard
    let launches_lk = RwLock::new(ls);
    let shared_lk = RwLock::new(&mut *shared);
    let t0a = AtomicU64::new(0);
    let t1a = AtomicU64::new(0);
    let claim = AtomicUsize::new(0);
    let want_trace = trace.is_some();
    let want_flight = flight.is_some();

    let work = |_w: usize| {
        let t0 = t0a.load(Ordering::Relaxed);
        let t1 = t1a.load(Ordering::Relaxed);
        loop {
            let i = claim.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let mut slot = lock_ok(slots[i].lock());
            let CoreSlot {
                core,
                out,
                shard,
                dram_view,
            } = &mut *slot;
            let lr = lock_ok(launches_lk.read());
            let sr = lock_ok(shared_lk.read());
            let mut check = match (shard.as_deref_mut(), whole.as_ref()) {
                (Some(s), _) => PhaseCheck::Shard(s),
                (None, Some(m)) => PhaseCheck::Whole(m),
                (None, None) => PhaseCheck::None,
            };
            advance_core(
                cfg,
                t0,
                t1,
                core,
                out,
                &mut check,
                dram_view,
                &lr,
                &sr,
                vm,
                i,
                want_trace,
                want_flight,
            );
        }
    };

    let driver = |ctl: &gpushield_runtime::CrewCtl| -> Result<(u64, SimProfile), RunError> {
        let mut cycle: u64 = 0;
        let mut age_seq: u64 = 0;
        let mut rr_cursor: usize = 0;
        let mut profile = SimProfile::default();
        let mut heaps: HashMap<u64, HeapRun> = HashMap::new();
        let mut keys: Vec<DrainKey> = Vec::with_capacity(n * QUANTUM as usize * 4);
        let mut quanta: u64 = 0;
        let mut busy_totals = vec![0u64; n];
        let mut max_skew: u64 = 0;
        let mut tele = registry.map(|reg| ParTele::new(reg, n));
        let mut trace = trace;
        let mut flight = flight;
        loop {
            if cycle >= cfg.max_cycles {
                if let Some(f) = flight.as_mut() {
                    f.record(
                        cycle,
                        FlightEvent::WatchdogTrip {
                            budget: cfg.max_cycles,
                        },
                    );
                }
                return Err(RunError::CycleBudgetExceeded {
                    cycle,
                    budget: cfg.max_cycles,
                });
            }
            {
                let mut lw = lock_ok(launches_lk.write());
                try_dispatch(
                    cfg,
                    &slots,
                    &mut lw,
                    mode,
                    cycle,
                    &mut age_seq,
                    &mut rr_cursor,
                    &mut trace,
                );
                if lw.iter().all(|l| l.finished()) {
                    break;
                }
            }
            sample_occupancy_par(&mut tele, cycle, &slots);
            let t1 = cycle.saturating_add(QUANTUM).min(cfg.max_cycles);
            t0a.store(cycle, Ordering::Relaxed);
            t1a.store(t1, Ordering::Relaxed);
            claim.store(0, Ordering::Relaxed);
            ctl.round();
            quanta += 1;
            let issued = drain(
                cfg,
                &slots,
                &launches_lk,
                &shared_lk,
                vm,
                &whole,
                &mut heaps,
                &mut profile,
                &mut trace,
                &mut tele,
                &mut keys,
                &mut busy_totals,
                &mut max_skew,
                &mut flight,
            )?;
            if lock_ok(launches_lk.read()).iter().all(|l| l.finished()) {
                break;
            }
            if issued > 0 {
                cycle = t1;
            } else {
                profile.idle_skips += 1;
                // Event skip: jump to the next cycle anything becomes ready.
                // Blocked warps (exhausted heap) never wake; warps at a
                // barrier wake only through peers, which issue first.
                let mut next: Option<u64> = None;
                let mut alloc_blocked = false;
                {
                    let lr = lock_ok(launches_lk.read());
                    for slot in &slots {
                        let s = lock_ok(slot.lock());
                        for w in &s.core.warps {
                            if w.done || lr[w.launch_idx].aborted {
                                continue;
                            }
                            if w.blocked {
                                alloc_blocked = true;
                                continue;
                            }
                            if w.at_barrier || w.ready_at == u64::MAX {
                                continue;
                            }
                            next = Some(next.map_or(w.ready_at, |m| m.min(w.ready_at)));
                        }
                    }
                }
                match next {
                    Some(nr) => {
                        // Clamp to the watchdog budget so the error reports
                        // the budget cycle, not a far-future wakeup.
                        let target = nr.max(t1).min(cfg.max_cycles);
                        if let Some(t) = tele.as_mut() {
                            let tb = &mut t.base;
                            tb.reg.add(tb.idle_skip_cycles, target - cycle);
                        }
                        cycle = target;
                    }
                    None => {
                        if alloc_blocked {
                            return Err(RunError::HeapDeadlock { cycle });
                        }
                        return Err(RunError::BarrierDeadlock { cycle });
                    }
                }
            }
        }
        let final_cycles = lock_ok(launches_lk.read())
            .iter()
            .map(|l| l.report.end_cycle)
            .max()
            .unwrap_or(0);
        if let Some(t) = tele.as_mut() {
            let qc = t.quantum_count;
            let ms = t.max_skew;
            t.base.reg.add(qc, quanta);
            t.base.reg.set(ms, max_skew);
            for (i, id) in t.busy.iter().enumerate() {
                t.base.reg.set(*id, busy_totals[i]);
            }
        }
        Ok((final_cycles, profile))
    };

    let crew_result = with_crew(workers, work, driver);

    let _ = whole; // end the serialized-guard borrow before merging forks
    let mut l1d = gpushield_mem::CacheStats::default();
    let mut l1tlb = gpushield_mem::CacheStats::default();
    for slot in slots {
        let s = lock_ok(slot.into_inner());
        let cs = s.core.l1d.stats();
        l1d.hits += cs.hits;
        l1d.misses += cs.misses;
        l1d.evictions += cs.evictions;
        let ts = s.core.l1tlb.stats();
        l1tlb.hits += ts.hits;
        l1tlb.misses += ts.misses;
        l1tlb.evictions += ts.evictions;
    }
    if let Some(g) = guard {
        g.merge_forked();
    }
    let (final_cycles, mut profile) = crew_result?;
    let ls = lock_ok(launches_lk.into_inner());
    let _ = shared_lk; // end the shared-system borrow before reading stats
    let dram = shared.dram_stats();
    profile.dram_accesses = dram.requests;
    Ok(RunReport {
        cycles: final_cycles,
        launches: ls.into_iter().map(|l| l.report).collect(),
        l1d,
        l1_tlb: l1tlb,
        l2: shared.l2_stats(),
        l2_tlb: shared.l2_tlb_stats(),
        dram,
        profile,
    })
}

fn launch_allowed_on_core(
    cfg: &GpuConfig,
    mode: MultiKernelMode,
    n_launches: usize,
    launch_idx: usize,
    core_idx: usize,
) -> bool {
    match mode {
        MultiKernelMode::IntraCore => true,
        MultiKernelMode::InterCore => {
            let per = cfg.num_cores.div_ceil(n_launches);
            core_idx / per == launch_idx.min(cfg.num_cores / per)
        }
    }
}

/// Round-robin workgroup dispatch at a quantum boundary — the sequential
/// dispatcher verbatim, run serially by the driver thread.
#[allow(clippy::too_many_arguments)]
fn try_dispatch(
    cfg: &GpuConfig,
    slots: &[Mutex<CoreSlot<'_>>],
    lw: &mut [LaunchState],
    mode: MultiKernelMode,
    cycle: u64,
    age_seq: &mut u64,
    rr_cursor: &mut usize,
    trace: &mut Option<&mut Trace>,
) {
    // Fast path: nothing left to place.
    if lw
        .iter()
        .all(|l| l.aborted || l.next_wg >= u64::from(l.launch.launch.grid))
    {
        return;
    }
    loop {
        let mut any = false;
        for core_idx in 0..slots.len() {
            let nl = lw.len();
            for k in 0..nl {
                let li = (*rr_cursor + k) % nl;
                if lw[li].aborted
                    || lw[li].next_wg >= u64::from(lw[li].launch.launch.grid)
                    || !launch_allowed_on_core(cfg, mode, nl, li, core_idx)
                {
                    continue;
                }
                if dispatch_wg(cfg, slots, lw, cycle, age_seq, trace, core_idx, li) {
                    *rr_cursor = (li + 1) % nl;
                    any = true;
                    break;
                }
            }
        }
        if !any {
            break;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn dispatch_wg(
    cfg: &GpuConfig,
    slots: &[Mutex<CoreSlot<'_>>],
    lw: &mut [LaunchState],
    cycle: u64,
    age_seq: &mut u64,
    trace: &mut Option<&mut Trace>,
    core_idx: usize,
    li: usize,
) -> bool {
    let needed_warps = lw[li].warps_per_wg;
    let (num_regs, shared_bytes) = {
        let k = &lw[li].launch.kernel;
        (k.num_regs(), k.shared_bytes())
    };
    let regs_needed = needed_warps * usize::from(num_regs) * cfg.warp_width;
    let mut slot = lock_ok(slots[core_idx].lock());
    let core = &mut slot.core;
    debug_assert_eq!(core.regs_used, core.regs_in_use(lw));
    debug_assert_eq!(core.shared_used, core.shared_in_use());
    if core.resident_warps() + needed_warps > cfg.max_warps_per_core()
        || core.regs_used + regs_needed > cfg.regs_per_core
        || core.shared_used + shared_bytes > cfg.shared_per_core
    {
        return false;
    }
    let lstate = &mut lw[li];
    let wg = lstate.next_wg;
    lstate.next_wg += 1;
    if let Some(t) = trace.as_mut() {
        t.push(TraceEvent {
            cycle,
            core: core_idx,
            launch: li,
            wg,
            warp: 0,
            site: None,
            kind: TraceKind::Dispatch { wg },
        });
    }
    if lstate.report.start_cycle == 0 && lstate.report.instructions == 0 {
        lstate.report.start_cycle = cycle;
    }
    let block = lstate.launch.launch.block as usize;
    core.wgs.push(ResidentWg {
        launch_idx: li,
        wg,
        shared: vec![0u8; shared_bytes as usize],
    });
    core.regs_used += regs_needed;
    core.shared_used += shared_bytes;
    core.next_ready_at = core.next_ready_at.min(cycle);
    for w in 0..needed_warps {
        let lanes = (block - w * cfg.warp_width).min(cfg.warp_width);
        let mut warp = Warp::new(li, wg, w, cfg.warp_width, lanes, num_regs, *age_seq);
        warp.ready_at = cycle;
        *age_seq += 1;
        core.warps.push(warp);
    }
    true
}

/// Stride-bucket occupancy sampling at a quantum boundary (the sequential
/// rule, evaluated over all cores by the driver thread).
fn sample_occupancy_par(tele: &mut Option<ParTele<'_>>, cycle: u64, slots: &[Mutex<CoreSlot<'_>>]) {
    let Some(t) = tele.as_mut() else {
        return;
    };
    let tb = &mut t.base;
    if cycle < tb.next_sample {
        return;
    }
    let stride = tb.reg.stride();
    tb.next_sample = (cycle / stride + 1) * stride;
    let mut resident = 0u64;
    let mut ready = 0u64;
    for slot in slots {
        let s = lock_ok(slot.lock());
        for w in &s.core.warps {
            if w.done {
                continue;
            }
            resident += 1;
            if !w.at_barrier && !w.blocked && w.ready_at <= cycle {
                ready += 1;
            }
        }
    }
    tb.reg.sample(tb.resident_warps, cycle, resident);
    tb.reg.sample(tb.ready_warps, cycle, ready);
}

/// The quantum drain, run serially by the driver thread. Pass 1 collects
/// every outbox (counters merge in core order; events gain their core in
/// the sort key); pass 2 replays the events against the real shared
/// system in canonical `(t, core, seq)` order; pass 3 refreshes each
/// core's private DRAM timing view from the post-drain channel state.
/// Returns the number of instructions issued across the quantum.
#[allow(clippy::too_many_arguments)]
fn drain<'w, 'g>(
    cfg: &GpuConfig,
    slots: &[Mutex<CoreSlot<'_>>],
    launches_lk: &RwLock<Vec<LaunchState>>,
    shared_lk: &RwLock<&mut SharedMemorySystem>,
    vm: &VirtualMemorySpace,
    whole: &Option<Mutex<&'w mut (dyn MemGuard + 'g)>>,
    heaps: &mut HashMap<u64, HeapRun>,
    profile: &mut SimProfile,
    trace: &mut Option<&mut Trace>,
    tele: &mut Option<ParTele<'_>>,
    keys: &mut Vec<DrainKey>,
    busy_totals: &mut [u64],
    max_skew: &mut u64,
    flight: &mut Option<&mut FlightRecorder>,
) -> Result<u64, RunError> {
    keys.clear();
    let mut issued_total = 0u64;
    let (mut busy_min, mut busy_max) = (u64::MAX, 0u64);
    {
        let mut lw = lock_ok(launches_lk.write());
        for (ci, slot) in slots.iter().enumerate() {
            let mut s = lock_ok(slot.lock());
            let out = &mut s.out;
            for q in out.evs.drain(..) {
                keys.push(DrainKey {
                    t: q.t,
                    core: ci as u32,
                    seq: q.seq,
                    ev: q.ev,
                });
            }
            out.seq = 0;
            profile.merge(&out.profile);
            out.profile = SimProfile::default();
            for (li, acc) in out.accs.iter_mut().enumerate() {
                acc.drain_into(&mut lw[li].report);
            }
            if let Some(t) = tele.as_mut() {
                let tb = &mut t.base;
                tb.reg.add(tb.no_issue_slots, out.no_issue);
                for &st in &out.stalls {
                    tb.reg.observe(tb.visible_stall, st);
                }
            }
            out.no_issue = 0;
            out.stalls.clear();
            issued_total += out.issued;
            busy_totals[ci] += out.busy;
            busy_min = busy_min.min(out.busy);
            busy_max = busy_max.max(out.busy);
            out.issued = 0;
            out.busy = 0;
        }
    }
    if busy_max > busy_min {
        *max_skew = (*max_skew).max(busy_max - busy_min);
    }
    keys.sort_unstable_by_key(|k| (k.t, k.core, k.seq));

    {
        let mut lw = lock_ok(launches_lk.write());
        let mut sw = lock_ok(shared_lk.write());
        let shared: &mut SharedMemorySystem = &mut sw;
        for k in keys.iter() {
            match k.ev {
                Ev::Data(pa) => {
                    shared.access_data(pa, k.t);
                }
                Ev::Xlate(va) => {
                    shared.translate(va, k.t);
                }
                Ev::Trace(ev) => {
                    if let Some(t) = trace.as_mut() {
                        t.push(ev);
                    }
                }
                Ev::Flight(fe) => {
                    if let Some(f) = flight.as_mut() {
                        f.record(k.t, fe);
                    }
                }
                Ev::Retired { li } => {
                    let li = li as usize;
                    let lstate = &mut lw[li];
                    lstate.wgs_retired += 1;
                    if lstate.finished() {
                        lstate.report.end_cycle = k.t;
                        let kid = lstate.launch.kernel_id;
                        if let Some(f) = flight.as_mut() {
                            f.record(k.t, FlightEvent::KernelComplete { kernel_id: kid });
                        }
                        guard_kernel_end(slots, whole, kid);
                    }
                }
                Ev::Abort {
                    li,
                    wg,
                    win,
                    reason,
                } => {
                    let li = li as usize;
                    if !lw[li].aborted {
                        apply_abort(
                            slots,
                            &mut lw,
                            trace,
                            whole,
                            flight,
                            li,
                            wg,
                            win as usize,
                            reason,
                            k.t,
                        );
                    }
                }
                Ev::Parked { li, wg, win } => {
                    let pending = drain_parked(
                        cfg,
                        slots,
                        &mut lw,
                        shared,
                        vm,
                        whole,
                        heaps,
                        profile,
                        trace,
                        tele,
                        flight,
                        k.t,
                        k.core as usize,
                        li as usize,
                        wg,
                        win as usize,
                    )?;
                    if let Some(req) = pending {
                        if !lw[req.li].aborted {
                            apply_abort(
                                slots, &mut lw, trace, whole, flight, req.li, req.wg, req.win,
                                req.reason, k.t,
                            );
                        }
                    }
                }
            }
        }
    }

    {
        let sr = lock_ok(shared_lk.read());
        for slot in slots {
            let mut s = lock_ok(slot.lock());
            sr.dram().refresh_view(&mut s.dram_view);
        }
    }
    Ok(issued_total)
}

/// A launch abort requested from inside a drain handler, applied after
/// the slot lock drops. Carries the guilty warp's identity so the flight
/// recorder can attribute the abort.
struct AbortReq {
    li: usize,
    wg: u64,
    win: usize,
    reason: AbortReason,
}

/// Executes a parked serialized operation at the drain. The warp is
/// re-found by its stable `(launch, wg, warp-in-wg)` identity (indices
/// shift when workgroups retire); a missing warp means its launch aborted
/// earlier in canonical order and the park is moot. Returns a pending
/// abort request to apply after the slot lock drops.
#[allow(clippy::too_many_arguments)]
fn drain_parked<'w, 'g>(
    cfg: &GpuConfig,
    slots: &[Mutex<CoreSlot<'_>>],
    lw: &mut [LaunchState],
    shared: &mut SharedMemorySystem,
    vm: &VirtualMemorySpace,
    whole: &Option<Mutex<&'w mut (dyn MemGuard + 'g)>>,
    heaps: &mut HashMap<u64, HeapRun>,
    profile: &mut SimProfile,
    trace: &mut Option<&mut Trace>,
    tele: &mut Option<ParTele<'_>>,
    flight: &mut Option<&mut FlightRecorder>,
    t: u64,
    ci: usize,
    li: usize,
    wg: u64,
    win: usize,
) -> Result<Option<AbortReq>, RunError> {
    let mut slot = lock_ok(slots[ci].lock());
    let sl = &mut *slot;
    let Some(wi) = sl
        .core
        .warps
        .iter()
        .position(|w| w.launch_idx == li && w.wg == wg && w.warp_in_wg == win && !w.done)
    else {
        return Ok(None);
    };
    let Some(pc) = sl.core.warps[wi].pc() else {
        return Ok(None);
    };
    let instr = lw[li].launch.kernel.block(pc.0).instrs()[pc.1];
    match instr {
        Instr::Malloc { dst, size } => {
            drain_malloc(cfg, sl, lw, heaps, profile, t, wi, li, Some(dst), size)?;
            Ok(None)
        }
        Instr::Free { .. } => {
            drain_malloc(
                cfg,
                sl,
                lw,
                heaps,
                profile,
                t,
                wi,
                li,
                None,
                Operand::Imm(0),
            )?;
            Ok(None)
        }
        Instr::AtomAdd { .. } => Ok(drain_atom(
            cfg, sl, lw, shared, vm, whole, profile, trace, tele, flight, t, ci, wi, li, pc, instr,
        )),
        _ => unreachable!("only malloc/free/global atomics park"),
    }
}

/// Device-heap `malloc`/`free` at the drain: the sequential allocator
/// semantics at the park's issue cycle, against the (driver-owned) global
/// heap cursor map.
#[allow(clippy::too_many_arguments)]
fn drain_malloc(
    cfg: &GpuConfig,
    sl: &mut CoreSlot<'_>,
    lw: &mut [LaunchState],
    heaps: &mut HashMap<u64, HeapRun>,
    profile: &mut SimProfile,
    t: u64,
    wi: usize,
    li: usize,
    dst: Option<VReg>,
    size: Operand,
) -> Result<(), RunError> {
    let heap = match lw[li].launch.heap {
        Some(h) => h,
        None => {
            return Err(RunError::NoHeap {
                kernel: lw[li].launch.kernel.name().to_string(),
            })
        }
    };
    let core = &mut sl.core;
    let mut scratch = std::mem::take(&mut core.scratch);
    {
        let ctx = exec_ctx(&lw[li]);
        let warp = &core.warps[wi];
        scratch.lane_sizes.clear();
        scratch.lane_sizes.extend(
            (0..warp.width).map(|lane| warp.lane_active(lane).then(|| warp.eval(size, lane, &ctx))),
        );
    }
    let entry = heaps.entry(heap.tagged_base.va()).or_default();
    let mut done_at = t;
    let mut exhausted = false;
    scratch.results.clear();
    scratch.results.resize(scratch.lane_sizes.len(), None);
    for (lane, sz) in scratch.lane_sizes.iter().enumerate() {
        let Some(sz) = sz else { continue };
        // The device allocator is a serialized global resource: each
        // lane's request takes its turn (§5.2.1 footnote 2).
        let start = entry.lock_until.max(t);
        entry.lock_until = start + cfg.heap_alloc_cycles;
        done_at = done_at.max(entry.lock_until);
        if dst.is_some() {
            let aligned = sz.div_ceil(16).max(1) * 16;
            if entry.cursor + aligned <= heap.size {
                let ptr = heap.tagged_base.raw() + entry.cursor;
                entry.cursor += aligned;
                scratch.results[lane] = Some(ptr);
            } else if cfg.malloc_blocks_on_exhaustion {
                exhausted = true;
                break;
            } else {
                scratch.results[lane] = Some(0); // CUDA malloc returns NULL
            }
        }
    }
    if exhausted {
        let warp = &mut core.warps[wi];
        warp.blocked = true;
        warp.ready_at = t;
        core.scratch = scratch;
        profile.malloc_issues += 1;
        lw[li].report.instructions += 1;
        return Ok(());
    }
    let warp = &mut core.warps[wi];
    if let Some(dst) = dst {
        for (lane, r) in scratch.results.iter().enumerate() {
            if let Some(v) = r {
                warp.set_reg(dst, lane, *v);
            }
        }
    }
    warp.ready_at = done_at;
    warp.advance_pc();
    core.next_ready_at = core.next_ready_at.min(done_at);
    core.scratch = scratch;
    profile.malloc_issues += 1;
    lw[li].report.instructions += 1;
    Ok(())
}

/// A global-memory atomic at the drain: the sequential LSU/BCU pipeline
/// verbatim at the park's issue cycle, against the *real* shared memory
/// system — canonical order makes the read-modify-write sequence and its
/// timing identical for every worker count.
#[allow(clippy::too_many_arguments)]
fn drain_atom<'w, 'g>(
    cfg: &GpuConfig,
    sl: &mut CoreSlot<'_>,
    lw: &mut [LaunchState],
    shared: &mut SharedMemorySystem,
    vm: &VirtualMemorySpace,
    whole: &Option<Mutex<&'w mut (dyn MemGuard + 'g)>>,
    profile: &mut SimProfile,
    trace: &mut Option<&mut Trace>,
    tele: &mut Option<ParTele<'_>>,
    flight: &mut Option<&mut FlightRecorder>,
    t: u64,
    ci: usize,
    wi: usize,
    li: usize,
    site: (BlockId, usize),
    instr: Instr,
) -> Option<AbortReq> {
    let Instr::AtomAdd {
        dst,
        addr,
        space,
        width,
        src,
    } = instr
    else {
        unreachable!("drain_atom only receives AtomAdd");
    };
    let width_b = width.bytes();
    let CoreSlot { core, shard, .. } = sl;
    let (wgid, winid) = {
        let w = &core.warps[wi];
        (w.wg, w.warp_in_wg)
    };
    let abort = |reason| {
        Some(AbortReq {
            li,
            wg: wgid,
            win: winid,
            reason,
        })
    };

    // ---- AGU (global-space path; shared atomics never park) -------------
    let mut scratch = std::mem::take(&mut core.scratch);
    let ptr = {
        let ctx = exec_ctx(&lw[li]);
        let warp = &core.warps[wi];
        scratch.lane_vas.clear();
        scratch.lane_vas.resize(warp.width, None);
        let mut ptr = TaggedPtr::from_raw(0);
        let mut ptr_set = false;
        #[allow(clippy::needless_range_loop)] // lane drives eval() too
        for lane in 0..warp.width {
            if !warp.lane_active(lane) {
                continue;
            }
            let (base_raw, off) = match addr {
                AddrExpr::Flat { addr } => (warp.eval(addr, lane, &ctx), 0u64),
                AddrExpr::BaseOffset { base, offset } => {
                    (warp.eval(base, lane, &ctx), warp.eval(offset, lane, &ctx))
                }
                AddrExpr::BindingTable { bti, offset } => {
                    (ctx.args[usize::from(bti)], warp.eval(offset, lane, &ctx))
                }
            };
            if !ptr_set {
                ptr = TaggedPtr::from_raw(base_raw);
                ptr_set = true;
            }
            scratch.lane_vas[lane] =
                Some(TaggedPtr::from_raw(base_raw).va().wrapping_add(off) & VA_MASK);
        }
        scratch.store_vals.clear();
        scratch
            .store_vals
            .extend((0..warp.width).map(|lane| warp.eval(src, lane, &ctx)));
        ptr
    };

    // ---- Translate + real shared-system timing --------------------------
    let mut translation_fault: Option<MemFault> = None;
    for va in scratch.lane_vas.iter().flatten() {
        if let Err(f) = vm.translate(*va) {
            translation_fault.get_or_insert(f);
        }
    }
    coalesce_warp_into(&scratch.lane_vas, width_b, &mut scratch.txs);
    let start = t.max(core.lsu_busy_until);
    let mut done_at = start + cfg.timings.l1_hit;
    let mut all_l1_hit = true;
    for tx in &scratch.txs {
        let Ok(pa) = vm.translate_bypass(tx.base) else {
            continue;
        };
        let t_ready = if core.l1tlb.access(tx.base) {
            start
        } else {
            shared.translate(tx.base, start)
        };
        let tx_done = if core.l1d.access(pa) {
            (start + cfg.timings.l1_hit).max(t_ready + 1)
        } else {
            all_l1_hit = false;
            shared.access_data(pa, (start + cfg.timings.l1_hit).max(t_ready))
        };
        done_at = done_at.max(tx_done);
    }

    // ---- Bounds check ----------------------------------------------------
    let decision = lw[li].launch.plan.get(site);
    let mut stall = 0u64;
    let mut verdict = GuardVerdict::Allow;
    if shard.is_some() || whole.is_some() {
        if decision == SiteCheck::Static {
            lw[li].report.checks_skipped += 1;
            if lw[li].launch.plan.certified(site) {
                lw[li].report.checks_certified += 1;
            }
        } else if let Some(range) = warp_address_range(&scratch.lane_vas, width_b) {
            let access = MemAccess {
                core: ci,
                kernel_id: lw[li].launch.kernel_id,
                is_store: true,
                space,
                pointer: ptr,
                site,
                range,
                site_check: decision,
                transactions: scratch.txs.len(),
                active_lanes: scratch.lane_vas.iter().flatten().count(),
                l1d_all_hit: all_l1_hit,
            };
            let chk = match (shard.as_deref_mut(), whole.as_ref()) {
                (Some(s), _) => s.check(&access, vm),
                (None, Some(m)) => lock_ok(m.lock()).check(&access, vm),
                (None, None) => GuardCheck::allow_free(),
            };
            stall = chk.stall_cycles;
            verdict = chk.verdict;
            profile.bcu_checks += 1;
            let report = &mut lw[li].report;
            report.checks_performed += 1;
            report.stall_attribution.record(chk.path, chk.stall_cycles);
            if let Some(f) = flight.as_mut() {
                f.record(
                    t,
                    FlightEvent::CheckVerdict {
                        kernel_id: lw[li].launch.kernel_id,
                        wg: wgid as u32,
                        warp: winid as u16,
                        block: site.0 .0,
                        idx: site.1 as u32,
                        path: chk.path.code(),
                        verdict: chk.verdict.code(),
                        is_store: true,
                        lo: range.0,
                        hi: range.1,
                    },
                );
            }
        }
    }

    // ---- Outcome ---------------------------------------------------------
    match verdict {
        GuardVerdict::Fault => {
            core.scratch = scratch;
            return abort(AbortReason::BoundsViolation);
        }
        GuardVerdict::Squash => {
            lw[li].report.violations_squashed += 1;
            let warp = &mut core.warps[wi];
            for lane in 0..warp.width {
                if warp.lane_active(lane) {
                    warp.set_reg(dst, lane, 0);
                }
            }
        }
        GuardVerdict::Allow => {
            if let Some(f) = translation_fault {
                core.scratch = scratch;
                return abort(AbortReason::MemFault(f));
            }
            // Lanes serialize in lane order (real hardware serializes
            // same-address atomics; a fixed order keeps it deterministic).
            let warp_width = core.warps[wi].width;
            for (lane, lane_va) in scratch.lane_vas.iter().enumerate().take(warp_width) {
                let Some(va) = *lane_va else { continue };
                // As in the load/store path: the pre-check translated every
                // lane VA, so a fault here means the mapping changed under
                // us — take the typed abort, never a panic.
                let old = match vm.read_uint(va, width_b) {
                    Ok(v) => v,
                    Err(f) => {
                        core.scratch = scratch;
                        return abort(AbortReason::MemFault(f));
                    }
                };
                let add = scratch.store_vals[lane];
                if let Err(f) = vm.write_uint(va, width_b, old.wrapping_add(add)) {
                    core.scratch = scratch;
                    return abort(AbortReason::MemFault(f));
                }
                let warp = &mut core.warps[wi];
                warp.set_reg(dst, lane, old);
            }
        }
    }

    // ---- Timing commit ---------------------------------------------------
    if let Some(tr) = trace.as_mut() {
        let w = &core.warps[wi];
        tr.push(TraceEvent {
            cycle: t,
            core: ci,
            launch: li,
            wg: w.wg,
            warp: w.warp_in_wg,
            site: Some(site),
            kind: TraceKind::Mem {
                space,
                is_store: true,
                transactions: scratch.txs.len().min(255) as u8,
                stall: stall.min(255) as u8,
            },
        });
    }
    let atomic_serial = scratch.lane_vas.iter().flatten().count() as u64;
    let n_txs = scratch.txs.len() as u64;
    core.lsu_busy_until = start + n_txs + stall + atomic_serial;
    let warp = &mut core.warps[wi];
    warp.ready_at = done_at + stall + atomic_serial;
    warp.advance_pc();
    core.next_ready_at = core.next_ready_at.min(done_at + stall + atomic_serial);
    core.scratch = scratch;
    profile.mem_issues += 1;
    profile.lsu_transactions += n_txs;
    profile.bcu_stall_cycles += stall;
    if let Some(te) = tele.as_mut() {
        let tb = &mut te.base;
        tb.reg.observe(tb.visible_stall, stall);
    }
    let report = &mut lw[li].report;
    report.instructions += 1;
    report.mem_instructions += 1;
    report.transactions += n_txs;
    report.guard_stall_cycles += stall;
    None
}

/// Strips an aborting launch from the whole machine at the drain — the
/// sequential `abort_launch` semantics at the abort's issue cycle. Only
/// the canonically-first abort event per launch gets here.
#[allow(clippy::too_many_arguments)]
fn apply_abort<'w, 'g>(
    slots: &[Mutex<CoreSlot<'_>>],
    lw: &mut [LaunchState],
    trace: &mut Option<&mut Trace>,
    whole: &Option<Mutex<&'w mut (dyn MemGuard + 'g)>>,
    flight: &mut Option<&mut FlightRecorder>,
    li: usize,
    wg: u64,
    win: usize,
    reason: AbortReason,
    t: u64,
) {
    if let Some(tr) = trace.as_mut() {
        tr.push(TraceEvent {
            cycle: t,
            core: 0,
            launch: li,
            wg: 0,
            warp: 0,
            site: None,
            kind: TraceKind::Abort,
        });
    }
    let kernel_id = {
        let lstate = &mut lw[li];
        lstate.aborted = true;
        lstate.report.abort = Some(reason);
        lstate.report.end_cycle = t;
        lstate.launch.kernel_id
    };
    if let Some(f) = flight.as_mut() {
        f.record(
            t,
            FlightEvent::KernelAbort {
                kernel_id,
                wg: wg as u32,
                warp: win as u16,
                reason: reason.code(),
            },
        );
    }
    for slot in slots {
        let mut s = lock_ok(slot.lock());
        let core = &mut s.core;
        core.warps.retain(|w| w.launch_idx != li);
        core.wgs.retain(|g| g.launch_idx != li);
        core.last_issued = None;
        core.regs_used = core.regs_in_use(lw);
        core.shared_used = core.shared_in_use();
        core.next_ready_at = recompute_next_ready(core);
    }
    guard_kernel_end(slots, whole, kernel_id);
}

/// RCache flush on kernel end: every shard (core order) plus the whole
/// guard when running unsharded.
fn guard_kernel_end<'w, 'g>(
    slots: &[Mutex<CoreSlot<'_>>],
    whole: &Option<Mutex<&'w mut (dyn MemGuard + 'g)>>,
    kernel_id: u16,
) {
    for slot in slots {
        let mut s = lock_ok(slot.lock());
        if let Some(sh) = s.shard.as_deref_mut() {
            sh.on_kernel_end(kernel_id);
        }
    }
    if let Some(m) = whole {
        lock_ok(m.lock()).on_kernel_end(kernel_id);
    }
}
