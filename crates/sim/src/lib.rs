//! Cycle-level SIMT GPU timing simulator — the MacSim-equivalent substrate
//! of the GPUShield reproduction.
//!
//! The simulator executes kernels written in the [`gpushield_isa`] IR
//! functionally *and* temporally in a single pass: warps issue in order,
//! greedy-then-oldest scheduling picks among resident warps, memory
//! instructions flow through AGU → coalescer → TLB ∥ L1D → shared L2 →
//! FR-FCFS DRAM, and an optional [`MemGuard`] (GPUShield's BCU, or a
//! software baseline) observes every warp-level memory access.
//!
//! Two Table 5 presets are provided: [`GpuConfig::nvidia`] (16 SMs, 1024
//! threads/SM, 32-wide warps) and [`GpuConfig::intel`] (24 cores, 7 HW
//! threads, 8-wide SIMD).
//!
//! # Example
//!
//! ```
//! use gpushield_isa::{KernelBuilder, MemSpace, MemWidth, Operand, TaggedPtr};
//! use gpushield_mem::{AllocPolicy, VirtualMemorySpace};
//! use gpushield_sim::{Gpu, GpuConfig, KernelLaunch, LaunchConfig};
//! use std::sync::Arc;
//!
//! // out[i] = 3 * i
//! let mut b = KernelBuilder::new("triple");
//! let out = b.param_buffer("out", false);
//! let tid = b.global_thread_id();
//! let v = b.mul(tid, Operand::Imm(3));
//! let off = b.shl(tid, Operand::Imm(2));
//! b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), v);
//! b.ret();
//! let kernel = Arc::new(b.finish()?);
//!
//! let mut vm = VirtualMemorySpace::new();
//! let buf = vm.alloc(64 * 4, AllocPolicy::Device512)?;
//!
//! let mut gpu = Gpu::new(GpuConfig::nvidia());
//! let launch = KernelLaunch::new(kernel, LaunchConfig::new(2, 32))
//!     .arg(TaggedPtr::unprotected(buf.va).raw());
//! let report = gpu.run(&mut vm, &mut [launch], None)?;
//! assert!(report.cycles > 0);
//! assert_eq!(vm.read_uint(buf.va + 40, 4)?, 30);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod fault;
mod gpu;
mod guard;
mod launch;
mod stats;
mod trace;
mod warp;

pub use config::GpuConfig;
pub use fault::{FaultKind, FaultPlan, FaultSession, FaultSpec, FaultTargets, InjectionRecord};
pub use gpu::{Gpu, MultiKernelMode, RunError};
pub use guard::{CheckPath, CoreGuard, GuardCheck, GuardVerdict, MemAccess, MemGuard};
pub use launch::{CheckPlan, HeapDesc, KernelLaunch, LaunchConfig, SiteCheck};
pub use stats::{
    publish_run_report, AbortReason, LaunchReport, ObservedRange, RunReport, SimProfile,
    StallAttribution,
};
pub use trace::{Trace, TraceEvent, TraceKind};
