//! Kernel launch descriptors: bound arguments, tagged local-variable bases,
//! the per-site check plan derived from the Bounds-Analysis Table, and the
//! heap region descriptor.

use gpushield_isa::{Kernel, TaggedPtr};
use std::sync::Arc;

/// 1-D launch geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Workgroups in the grid.
    pub grid: u32,
    /// Workitems per workgroup.
    pub block: u32,
}

impl LaunchConfig {
    /// Creates a `grid × block` launch.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(grid: u32, block: u32) -> Self {
        assert!(grid > 0 && block > 0, "degenerate launch");
        LaunchConfig { grid, block }
    }

    /// Total workitems.
    pub fn total_threads(&self) -> u64 {
        u64::from(self.grid) * u64::from(self.block)
    }
}

pub use gpushield_isa::{CheckPlan, SiteCheck};

/// The device-heap region for kernels that use `malloc` (§5.2.1: the entire
/// heap chunk is one protected region with one RBT entry).
#[derive(Debug, Clone, Copy)]
pub struct HeapDesc {
    /// Tagged pointer to the heap base; device `malloc` results inherit its
    /// tag.
    pub tagged_base: TaggedPtr,
    /// Heap size in bytes (`cudaLimitMallocHeapSize`).
    pub size: u64,
}

/// Everything the GPU needs to run one kernel.
#[derive(Debug, Clone)]
pub struct KernelLaunch {
    /// The kernel to execute.
    pub kernel: Arc<Kernel>,
    /// Launch geometry.
    pub launch: LaunchConfig,
    /// Bound argument values (tagged pointers or scalars), one per
    /// declared parameter.
    pub args: Vec<u64>,
    /// Tagged base address per declared local variable.
    pub local_bases: Vec<u64>,
    /// Driver-assigned kernel ID (tags RCache entries, §5.5).
    pub kernel_id: u16,
    /// Per-site bounds-check plan from static analysis.
    pub plan: CheckPlan,
    /// Device-heap descriptor when the kernel allocates dynamically.
    pub heap: Option<HeapDesc>,
}

impl KernelLaunch {
    /// Creates a launch with no arguments bound yet.
    pub fn new(kernel: Arc<Kernel>, launch: LaunchConfig) -> Self {
        KernelLaunch {
            kernel,
            launch,
            args: Vec::new(),
            local_bases: Vec::new(),
            kernel_id: 0,
            plan: CheckPlan::all_runtime(),
            heap: None,
        }
    }

    /// Appends an argument value (builder style).
    pub fn arg(mut self, value: u64) -> Self {
        self.args.push(value);
        self
    }

    /// Sets the tagged local-variable bases.
    pub fn local_bases(mut self, bases: Vec<u64>) -> Self {
        self.local_bases = bases;
        self
    }

    /// Sets the driver-assigned kernel ID.
    pub fn kernel_id(mut self, id: u16) -> Self {
        self.kernel_id = id;
        self
    }

    /// Attaches the static-analysis check plan.
    pub fn plan(mut self, plan: CheckPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Attaches the heap descriptor.
    pub fn heap(mut self, heap: HeapDesc) -> Self {
        self.heap = Some(heap);
        self
    }

    /// Validates that the bound arguments match the kernel's declared
    /// parameters and local variables.
    ///
    /// # Panics
    ///
    /// Panics on count mismatches; launching a kernel with missing
    /// arguments is a host-programming error, not a runtime condition.
    pub fn assert_bound(&self) {
        assert_eq!(
            self.args.len(),
            self.kernel.params().len(),
            "kernel {} expects {} arguments, {} bound",
            self.kernel.name(),
            self.kernel.params().len(),
            self.args.len()
        );
        assert_eq!(
            self.local_bases.len(),
            self.kernel.locals().len(),
            "kernel {} expects {} local bases, {} bound",
            self.kernel.name(),
            self.kernel.locals().len(),
            self.local_bases.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpushield_isa::{BlockId, KernelBuilder};

    fn trivial_kernel() -> Arc<Kernel> {
        let mut b = KernelBuilder::new("t");
        b.ret();
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn plan_defaults_to_runtime() {
        let plan = CheckPlan::all_runtime();
        assert_eq!(plan.get((BlockId(0), 0)), SiteCheck::Runtime);
    }

    #[test]
    fn plan_records_decisions() {
        let mut plan = CheckPlan::all_runtime();
        plan.set((BlockId(1), 2), SiteCheck::Static);
        plan.set((BlockId(1), 3), SiteCheck::SizeEmbedded);
        assert_eq!(plan.get((BlockId(1), 2)), SiteCheck::Static);
        assert_eq!(plan.get((BlockId(1), 3)), SiteCheck::SizeEmbedded);
        assert_eq!(plan.static_sites(), 1);
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn launch_builder_chains() {
        let l = KernelLaunch::new(trivial_kernel(), LaunchConfig::new(1, 32)).kernel_id(7);
        assert_eq!(l.kernel_id, 7);
        l.assert_bound();
    }

    #[test]
    #[should_panic(expected = "expects 0 arguments")]
    fn overbound_args_panic() {
        let l = KernelLaunch::new(trivial_kernel(), LaunchConfig::new(1, 1)).arg(1);
        l.assert_bound();
    }

    #[test]
    fn launch_totals() {
        assert_eq!(LaunchConfig::new(4, 256).total_threads(), 1024);
    }
}
