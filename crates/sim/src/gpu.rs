//! The GPU device: workgroup dispatcher, shader cores with
//! greedy-then-oldest warp scheduling, the LSU memory pipeline, and
//! multi-kernel execution modes (§6.2).

use crate::config::GpuConfig;
use crate::fault::{self, FaultKind, FaultSession};
use crate::guard::{GuardVerdict, MemAccess, MemGuard};
use crate::launch::{KernelLaunch, SiteCheck};
use crate::stats::{self, AbortReason, LaunchReport, RunReport, SimProfile};
use crate::trace::{Trace, TraceEvent, TraceKind};
use crate::warp::{ExecCtx, SimpleOutcome, Warp};
use gpushield_isa::{AddrExpr, Instr, MemSpace, ReconvergenceTable, TaggedPtr};
use gpushield_mem::coalesce::warp_address_range;
use gpushield_mem::{
    coalesce_warp_into, Cache, MemFault, Replacement, SharedMemorySystem, Tlb, Transaction,
    VirtualMemorySpace,
};
use gpushield_telemetry::flight::{FlightEvent, FlightRecorder};
use gpushield_telemetry::{MetricId, Registry};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// The deterministic cycle-quantum parallel engine. A child module of
/// `gpu` (not a sibling) so it can reuse every private piece of the
/// sequential model — `Core`, `LaunchState`, scheduling and LSU helpers —
/// without widening their visibility.
#[path = "par.rs"]
mod par;

const VA_MASK: u64 = (1 << 48) - 1;

/// How concurrent kernels share the GPU (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MultiKernelMode {
    /// Fine-grained core slicing: every kernel may occupy any core.
    #[default]
    IntraCore,
    /// Core partitioning: kernel *i* of *n* runs on the *i*-th slice of the
    /// cores.
    InterCore,
}

/// Host-visible simulation errors (distinct from in-kernel faults, which
/// abort the offending launch and are reported in its [`LaunchReport`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RunError {
    /// A workgroup cannot fit on an empty core (threads, registers, or
    /// shared memory).
    WorkgroupTooLarge {
        /// Offending kernel name.
        kernel: String,
    },
    /// All live warps are blocked at a barrier and nothing can unblock them.
    BarrierDeadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
    },
    /// A kernel executed `malloc` but the launch carried no heap region.
    NoHeap {
        /// Offending kernel name.
        kernel: String,
    },
    /// The cycle counter reached the configured hard budget
    /// (`GpuConfig::max_cycles`): the watchdog terminated a hang
    /// deterministically instead of simulating forever.
    CycleBudgetExceeded {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// The configured budget.
        budget: u64,
    },
    /// All remaining live warps are blocked on an exhausted device-heap
    /// allocator and no warp that could free memory is left (only
    /// reachable under `GpuConfig::malloc_blocks_on_exhaustion`).
    HeapDeadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::WorkgroupTooLarge { kernel } => {
                write!(f, "workgroup of kernel {kernel} cannot fit on a core")
            }
            RunError::BarrierDeadlock { cycle } => {
                write!(f, "barrier deadlock detected at cycle {cycle}")
            }
            RunError::NoHeap { kernel } => {
                write!(f, "kernel {kernel} uses malloc but no heap was configured")
            }
            RunError::CycleBudgetExceeded { cycle, budget } => {
                write!(f, "cycle budget of {budget} exceeded at cycle {cycle}")
            }
            RunError::HeapDeadlock { cycle } => {
                write!(f, "heap-allocation deadlock detected at cycle {cycle}")
            }
        }
    }
}

impl Error for RunError {}

struct ResidentWg {
    launch_idx: usize,
    wg: u64,
    shared: Vec<u8>,
}

/// Reusable per-core lane buffers for the LSU/AGU path. Taken out of the
/// core with `mem::take` for the duration of one memory instruction and
/// put back afterwards, so the steady-state hot path performs no heap
/// allocation — the vectors keep their capacity across instructions.
#[derive(Default)]
struct WarpScratch {
    /// Per-lane effective addresses (`None` = masked-off lane).
    lane_vas: Vec<Option<u64>>,
    /// Per-lane store/addend values (empty for loads).
    store_vals: Vec<u64>,
    /// Per-lane `malloc` request sizes.
    lane_sizes: Vec<Option<u64>>,
    /// Per-lane `malloc` result pointers.
    results: Vec<Option<u64>>,
    /// Coalesced transactions of the current access.
    txs: Vec<Transaction>,
}

struct Core {
    l1d: Cache,
    l1tlb: Tlb,
    lsu_busy_until: u64,
    warps: Vec<Warp>,
    wgs: Vec<ResidentWg>,
    last_issued: Option<usize>,
    /// Registers held by resident warps — kept in sync incrementally so the
    /// per-cycle dispatch fit check does not walk every warp.
    regs_used: usize,
    /// Shared-memory bytes held by resident workgroups, cached for the same
    /// reason as `regs_used`.
    shared_used: u64,
    /// Conservative lower bound on the earliest cycle any resident warp can
    /// issue. The scheduler skips the whole core while `cycle` is below it;
    /// every `ready_at` write and barrier release lowers it, and a failed
    /// warp pick recomputes it exactly.
    next_ready_at: u64,
    scratch: WarpScratch,
}

impl Core {
    fn new(cfg: &GpuConfig) -> Self {
        Core {
            l1d: Cache::new(cfg.l1_bytes, 128, cfg.l1_ways, Replacement::Lru),
            l1tlb: Tlb::new(cfg.l1_tlb_entries, 0),
            lsu_busy_until: 0,
            warps: Vec::new(),
            wgs: Vec::new(),
            last_issued: None,
            regs_used: 0,
            shared_used: 0,
            next_ready_at: 0,
            scratch: WarpScratch::default(),
        }
    }

    fn resident_warps(&self) -> usize {
        self.warps.len()
    }

    fn regs_in_use(&self, launches: &[LaunchState]) -> usize {
        self.warps
            .iter()
            .map(|w| usize::from(launches[w.launch_idx].launch.kernel.num_regs()) * w.width)
            .sum()
    }

    fn shared_in_use(&self) -> u64 {
        self.wgs.iter().map(|w| w.shared.len() as u64).sum()
    }
}

struct LaunchState {
    launch: KernelLaunch,
    recon: ReconvergenceTable,
    warps_per_wg: usize,
    next_wg: u64,
    wgs_retired: u64,
    aborted: bool,
    report: LaunchReport,
    /// Per-site attempted-address extremes, populated only under
    /// [`Gpu::run_recorded`] (`None` keeps the default hot path
    /// allocation-free).
    observed: Option<HashMap<(gpushield_isa::BlockId, usize), (u64, u64)>>,
}

impl LaunchState {
    fn finished(&self) -> bool {
        self.aborted || self.wgs_retired == u64::from(self.launch.launch.grid)
    }
}

#[derive(Debug, Default)]
struct HeapRun {
    cursor: u64,
    lock_until: u64,
}

/// The simulated GPU device.
///
/// The shared L2/L2-TLB stay warm across `run` calls (as on real hardware,
/// where kernel boundaries flush per-core L1s and GPUShield's RCaches but
/// not the chip-level cache); DRAM channel timing and statistics restart
/// with each run's cycle 0.
pub struct Gpu {
    cfg: GpuConfig,
    shared: SharedMemorySystem,
}

impl Gpu {
    /// Creates a GPU with the given hardware configuration.
    pub fn new(cfg: GpuConfig) -> Self {
        let shared =
            SharedMemorySystem::new(cfg.l2_bytes, cfg.l2_tlb_entries, cfg.dram, cfg.timings);
        Gpu { cfg, shared }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Runs `launches` to completion concurrently in
    /// [`MultiKernelMode::IntraCore`] and returns the run report.
    ///
    /// `guard` is the bounds-checking mechanism consulted on every memory
    /// access; `None` simulates an unprotected GPU.
    ///
    /// # Errors
    ///
    /// See [`RunError`]. In-kernel faults (illegal accesses, bounds
    /// violations) do *not* produce an `Err`; they abort the offending
    /// launch and surface in its [`LaunchReport`].
    pub fn run(
        &mut self,
        vm: &mut VirtualMemorySpace,
        launches: &[KernelLaunch],
        guard: Option<&mut dyn MemGuard>,
    ) -> Result<RunReport, RunError> {
        self.run_multi(vm, launches, MultiKernelMode::IntraCore, guard)
    }

    /// Runs `launches` with an explicit multi-kernel sharing mode.
    ///
    /// # Errors
    ///
    /// See [`Gpu::run`].
    pub fn run_multi(
        &mut self,
        vm: &mut VirtualMemorySpace,
        launches: &[KernelLaunch],
        mode: MultiKernelMode,
        guard: Option<&mut dyn MemGuard>,
    ) -> Result<RunReport, RunError> {
        self.shared.begin_run();
        par::run_engine(
            &self.cfg,
            vm,
            &mut self.shared,
            launches,
            mode,
            guard,
            None,
            None,
            None,
        )
    }

    /// Like [`Gpu::run`], additionally recording structured flight events
    /// (kernel lifecycle, check verdicts, aborts, watchdog trips) into
    /// `flight`. Events are buffered per core and drained in canonical
    /// `(cycle, core, seq)` order, so the recorded stream is identical
    /// for every `sim_threads` setting.
    ///
    /// # Errors
    ///
    /// See [`Gpu::run`].
    pub fn run_observed(
        &mut self,
        vm: &mut VirtualMemorySpace,
        launches: &[KernelLaunch],
        guard: Option<&mut dyn MemGuard>,
        flight: &mut FlightRecorder,
    ) -> Result<RunReport, RunError> {
        self.shared.begin_run();
        par::run_engine(
            &self.cfg,
            vm,
            &mut self.shared,
            launches,
            MultiKernelMode::IntraCore,
            guard,
            None,
            None,
            Some(flight),
        )
    }

    /// Like [`Gpu::run`], recording dispatch/memory/barrier/retire events
    /// into `trace` (bounded by the trace's capacity).
    ///
    /// # Errors
    ///
    /// See [`Gpu::run`].
    pub fn run_traced(
        &mut self,
        vm: &mut VirtualMemorySpace,
        launches: &[KernelLaunch],
        guard: Option<&mut dyn MemGuard>,
        trace: &mut Trace,
    ) -> Result<RunReport, RunError> {
        self.shared.begin_run();
        par::run_engine(
            &self.cfg,
            vm,
            &mut self.shared,
            launches,
            MultiKernelMode::IntraCore,
            guard,
            Some(trace),
            None,
            None,
        )
    }

    /// Like [`Gpu::run`], additionally recording, for every static memory
    /// instruction outside shared memory, the lowest and highest byte
    /// address any lane *attempted* to access (captured after address
    /// generation, before the bounds-check verdict). The extremes surface
    /// in each [`LaunchReport`]'s `observed_ranges`, sorted by site.
    ///
    /// This is the measurement side of the BAT soundness audit: replaying a
    /// workload under `run_recorded` and comparing the observed ranges
    /// against the driver's static claims detects any elided or
    /// size-embedded check whose declared window the kernel escaped.
    ///
    /// # Errors
    ///
    /// See [`Gpu::run`].
    pub fn run_recorded(
        &mut self,
        vm: &mut VirtualMemorySpace,
        launches: &[KernelLaunch],
        guard: Option<&mut dyn MemGuard>,
    ) -> Result<RunReport, RunError> {
        self.shared.begin_run();
        let mut st = RunState::new(
            &self.cfg,
            vm,
            &mut self.shared,
            launches,
            MultiKernelMode::IntraCore,
            guard,
        )?;
        for l in &mut st.launches {
            l.observed = Some(HashMap::new());
        }
        st.run()?;
        Ok(st.into_report())
    }

    /// Like [`Gpu::run`], but with a deterministic fault-injection session
    /// (see [`crate::fault`]) corrupting protection metadata mid-run. The
    /// session's injection log survives the call; running with an empty
    /// plan is behaviourally identical to [`Gpu::run`].
    ///
    /// # Errors
    ///
    /// See [`Gpu::run`]; additionally [`RunError::CycleBudgetExceeded`]
    /// when an injected hang trips the `max_cycles` watchdog.
    pub fn run_faulted(
        &mut self,
        vm: &mut VirtualMemorySpace,
        launches: &[KernelLaunch],
        guard: Option<&mut dyn MemGuard>,
        session: &mut FaultSession,
        flight: Option<&mut FlightRecorder>,
    ) -> Result<RunReport, RunError> {
        if session.is_empty() {
            // Nothing can ever fire: take the quantum engine so the
            // documented "empty plan ≡ run" equivalence holds exactly.
            return match flight {
                Some(f) => self.run_observed(vm, launches, guard, f),
                None => self.run(vm, launches, guard),
            };
        }
        self.shared.begin_run();
        let mut st = RunState::new(
            &self.cfg,
            vm,
            &mut self.shared,
            launches,
            MultiKernelMode::IntraCore,
            guard,
        )?;
        st.fault = Some(session);
        st.flight = flight;
        st.run()?;
        Ok(st.into_report())
    }

    /// Like [`Gpu::run`], publishing the full telemetry of the run into
    /// `registry`: scheduler counters and stride-sampled occupancy series
    /// while running, then launch totals, per-path stall attribution
    /// (`sim.stall.*`), the hot-path profile (`sim.profile.*` gauges) and
    /// memory-hierarchy statistics (`mem.*`, including per-channel DRAM
    /// occupancy) at completion. With `trace`, additionally records the
    /// bounded event stream exactly as [`Gpu::run_traced`] does — the two
    /// feeds together are what the Chrome-trace exporter consumes.
    ///
    /// Passing a [`Registry::disabled`] registry is behaviourally and
    /// allocation-identical to [`Gpu::run`]: every hook degenerates to one
    /// early-returning branch.
    ///
    /// # Errors
    ///
    /// See [`Gpu::run`].
    pub fn run_instrumented(
        &mut self,
        vm: &mut VirtualMemorySpace,
        launches: &[KernelLaunch],
        guard: Option<&mut dyn MemGuard>,
        registry: &mut Registry,
        trace: Option<&mut Trace>,
    ) -> Result<RunReport, RunError> {
        self.shared.begin_run();
        let report = par::run_engine(
            &self.cfg,
            vm,
            &mut self.shared,
            launches,
            MultiKernelMode::IntraCore,
            guard,
            trace,
            registry.enabled().then_some(&mut *registry),
            None,
        )?;
        stats::publish_run_report(registry, &report);
        gpushield_mem::publish_dram_channels(registry, "mem.dram", self.shared.dram());
        Ok(report)
    }
}

/// Hot-loop telemetry hooks: the registry plus pre-resolved metric
/// handles, so instrumented runs record in O(1) and uninstrumented runs
/// pay exactly one `Option` branch per hook site.
struct TeleCtx<'t> {
    reg: &'t mut Registry,
    /// Next cycle at or after which the occupancy series sample fires
    /// (stride-bucket crossing; robust to event-skip cycle jumps).
    next_sample: u64,
    resident_warps: MetricId,
    ready_warps: MetricId,
    no_issue_slots: MetricId,
    idle_skip_cycles: MetricId,
    visible_stall: MetricId,
}

impl<'t> TeleCtx<'t> {
    fn new(reg: &'t mut Registry) -> Self {
        let resident_warps = reg.series("sim.series.resident_warps");
        let ready_warps = reg.series("sim.series.ready_warps");
        let no_issue_slots = reg.counter("sim.sched.no_issue_slots");
        let idle_skip_cycles = reg.counter("sim.sched.idle_skip_cycles");
        let visible_stall = reg.histogram("sim.hist.visible_stall_cycles");
        TeleCtx {
            reg,
            next_sample: 0,
            resident_warps,
            ready_warps,
            no_issue_slots,
            idle_skip_cycles,
            visible_stall,
        }
    }
}

/// Validates the launches and builds their per-run bookkeeping. Shared by
/// the sequential [`RunState`] and the quantum engine in [`par`].
fn build_launch_states(
    cfg: &GpuConfig,
    launches: &[KernelLaunch],
) -> Result<Vec<LaunchState>, RunError> {
    assert!(!launches.is_empty(), "no launches given");
    let mut ls = Vec::with_capacity(launches.len());
    for l in launches {
        l.assert_bound();
        let warps_per_wg = (l.launch.block as usize).div_ceil(cfg.warp_width);
        // Reject workgroups that cannot fit an empty core.
        let regs_needed = warps_per_wg * usize::from(l.kernel.num_regs()) * cfg.warp_width;
        if warps_per_wg > cfg.max_warps_per_core()
            || regs_needed > cfg.regs_per_core
            || l.kernel.shared_bytes() > cfg.shared_per_core
        {
            return Err(RunError::WorkgroupTooLarge {
                kernel: l.kernel.name().to_string(),
            });
        }
        ls.push(LaunchState {
            recon: ReconvergenceTable::build(&l.kernel),
            warps_per_wg,
            next_wg: 0,
            wgs_retired: 0,
            aborted: false,
            report: LaunchReport {
                kernel: l.kernel.name().to_string(),
                kernel_id: l.kernel_id,
                ..LaunchReport::default()
            },
            launch: l.clone(),
            observed: None,
        });
    }
    Ok(ls)
}

struct RunState<'c, 'v, 'g, 't> {
    cfg: &'c GpuConfig,
    vm: &'v mut VirtualMemorySpace,
    guard: Option<&'g mut (dyn MemGuard + 'g)>,
    shared: &'c mut SharedMemorySystem,
    cores: Vec<Core>,
    launches: Vec<LaunchState>,
    heaps: HashMap<u64, HeapRun>,
    mode: MultiKernelMode,
    cycle: u64,
    age_seq: u64,
    rr_cursor: usize,
    trace: Option<&'t mut Trace>,
    fault: Option<&'t mut FaultSession>,
    telemetry: Option<TeleCtx<'t>>,
    flight: Option<&'t mut FlightRecorder>,
    profile: SimProfile,
}

impl<'c, 'v, 'g, 't> RunState<'c, 'v, 'g, 't> {
    fn new(
        cfg: &'c GpuConfig,
        vm: &'v mut VirtualMemorySpace,
        shared: &'c mut SharedMemorySystem,
        launches: &[KernelLaunch],
        mode: MultiKernelMode,
        guard: Option<&'g mut (dyn MemGuard + 'g)>,
    ) -> Result<Self, RunError> {
        let ls = build_launch_states(cfg, launches)?;
        Ok(RunState {
            cfg,
            vm,
            guard,
            shared,
            cores: (0..cfg.num_cores).map(|_| Core::new(cfg)).collect(),
            launches: ls,
            heaps: HashMap::new(),
            mode,
            cycle: 0,
            age_seq: 0,
            rr_cursor: 0,
            trace: None,
            fault: None,
            telemetry: None,
            flight: None,
            profile: SimProfile::default(),
        })
    }

    fn emit(
        &mut self,
        core: usize,
        li: usize,
        wg: u64,
        warp: usize,
        site: Option<(gpushield_isa::BlockId, usize)>,
        kind: TraceKind,
    ) {
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceEvent {
                cycle: self.cycle,
                core,
                launch: li,
                wg,
                warp,
                site,
                kind,
            });
        }
    }

    /// Samples the occupancy time series on stride-bucket crossings. The
    /// scheduler's event skip jumps the cycle counter, so sampling keys on
    /// "has the cycle reached the next stride boundary" rather than exact
    /// cycle equality — one point per crossed bucket, deterministic in
    /// simulated time.
    fn sample_occupancy(&mut self) {
        let Some(t) = self.telemetry.as_mut() else {
            return;
        };
        if self.cycle < t.next_sample {
            return;
        }
        let stride = t.reg.stride();
        t.next_sample = (self.cycle / stride + 1) * stride;
        let mut resident = 0u64;
        let mut ready = 0u64;
        for core in &self.cores {
            for w in &core.warps {
                if w.done {
                    continue;
                }
                resident += 1;
                if !w.at_barrier && !w.blocked && w.ready_at <= self.cycle {
                    ready += 1;
                }
            }
        }
        t.reg.sample(t.resident_warps, self.cycle, resident);
        t.reg.sample(t.ready_warps, self.cycle, ready);
    }

    fn launch_allowed_on_core(&self, launch_idx: usize, core_idx: usize) -> bool {
        match self.mode {
            MultiKernelMode::IntraCore => true,
            MultiKernelMode::InterCore => {
                let n = self.launches.len();
                let per = self.cfg.num_cores.div_ceil(n);
                core_idx / per == launch_idx.min(self.cfg.num_cores / per)
            }
        }
    }

    fn try_dispatch(&mut self) {
        // Fast path: nothing left to place (the common case once every
        // grid is fully dispatched) — skip the per-core fit probing.
        if self
            .launches
            .iter()
            .all(|l| l.aborted || l.next_wg >= u64::from(l.launch.launch.grid))
        {
            return;
        }
        // Workgroups spread round-robin across cores (at most one new
        // workgroup per core per round), as real dispatchers balance
        // occupancy instead of packing one SM full first.
        loop {
            let mut any = false;
            for core_idx in 0..self.cores.len() {
                let n = self.launches.len();
                for k in 0..n {
                    let li = (self.rr_cursor + k) % n;
                    if self.launches[li].aborted
                        || self.launches[li].next_wg
                            >= u64::from(self.launches[li].launch.launch.grid)
                        || !self.launch_allowed_on_core(li, core_idx)
                    {
                        continue;
                    }
                    if self.dispatch_wg(core_idx, li) {
                        self.rr_cursor = (li + 1) % n;
                        any = true;
                        break;
                    }
                }
            }
            if !any {
                break;
            }
        }
    }

    /// Places the next workgroup of launch `li` on core `core_idx` if it
    /// fits. Returns whether dispatch happened.
    fn dispatch_wg(&mut self, core_idx: usize, li: usize) -> bool {
        let needed_warps = self.launches[li].warps_per_wg;
        let (num_regs, shared_bytes) = {
            let k = &self.launches[li].launch.kernel;
            (k.num_regs(), k.shared_bytes())
        };
        let regs_needed = needed_warps * usize::from(num_regs) * self.cfg.warp_width;
        {
            let core = &self.cores[core_idx];
            debug_assert_eq!(core.regs_used, core.regs_in_use(&self.launches));
            debug_assert_eq!(core.shared_used, core.shared_in_use());
            if core.resident_warps() + needed_warps > self.cfg.max_warps_per_core()
                || core.regs_used + regs_needed > self.cfg.regs_per_core
                || core.shared_used + shared_bytes > self.cfg.shared_per_core
            {
                return false;
            }
        }
        let lstate = &mut self.launches[li];
        let wg = lstate.next_wg;
        lstate.next_wg += 1;
        self.emit(core_idx, li, wg, 0, None, TraceKind::Dispatch { wg });
        let lstate = &mut self.launches[li];
        if lstate.report.start_cycle == 0 && lstate.report.instructions == 0 {
            lstate.report.start_cycle = self.cycle;
        }
        let block = lstate.launch.launch.block as usize;
        let core = &mut self.cores[core_idx];
        core.wgs.push(ResidentWg {
            launch_idx: li,
            wg,
            shared: vec![0u8; shared_bytes as usize],
        });
        core.regs_used += regs_needed;
        core.shared_used += shared_bytes;
        // The new warps are ready now; wake the core if it was parked on a
        // later `next_ready_at`.
        core.next_ready_at = core.next_ready_at.min(self.cycle);
        for w in 0..needed_warps {
            let lanes = (block - w * self.cfg.warp_width).min(self.cfg.warp_width);
            let mut warp = Warp::new(
                li,
                wg,
                w,
                self.cfg.warp_width,
                lanes,
                num_regs,
                self.age_seq,
            );
            warp.ready_at = self.cycle;
            self.age_seq += 1;
            core.warps.push(warp);
        }
        true
    }

    fn pick_warp(&self, core_idx: usize) -> Option<usize> {
        // No aborted-launch check anywhere here: `abort_launch` removes the
        // launch's warps from every core immediately, so none survive to be
        // picked.
        let core = &self.cores[core_idx];
        let ready = |w: &Warp| !w.done && !w.at_barrier && !w.blocked && w.ready_at <= self.cycle;
        // Greedy: stick with the last-issued warp while it stays ready.
        if let Some(i) = core.last_issued {
            if let Some(w) = core.warps.get(i) {
                debug_assert!(!self.launches[w.launch_idx].aborted);
                if ready(w) {
                    return Some(i);
                }
            }
        }
        // Then oldest.
        core.warps
            .iter()
            .enumerate()
            .filter(|(_, w)| ready(w))
            .min_by_key(|(_, w)| w.age)
            .map(|(i, _)| i)
    }

    fn run(&mut self) -> Result<(), RunError> {
        loop {
            // Watchdog: a hard cycle budget turns hangs (injected faults
            // squashing a loop's exit condition, adversarial kernels) into
            // a deterministic, classifiable error.
            if self.cycle >= self.cfg.max_cycles {
                let (cycle, budget) = (self.cycle, self.cfg.max_cycles);
                if let Some(f) = self.flight.as_mut() {
                    f.record(cycle, FlightEvent::WatchdogTrip { budget });
                }
                return Err(RunError::CycleBudgetExceeded { cycle, budget });
            }
            self.try_dispatch();
            if self.launches.iter().all(|l| l.finished()) {
                break;
            }
            if self.telemetry.is_some() {
                self.sample_occupancy();
            }
            let mut any_issue = false;
            for core_idx in 0..self.cores.len() {
                if self.cores[core_idx].next_ready_at > self.cycle {
                    continue;
                }
                for _ in 0..self.cfg.issue_width {
                    match self.pick_warp(core_idx) {
                        Some(wi) => {
                            self.cores[core_idx].last_issued = Some(wi);
                            self.exec_warp(core_idx, wi)?;
                            any_issue = true;
                        }
                        None => {
                            // Nothing issuable: remember exactly when the
                            // next warp wakes so the scans above are skipped
                            // until then.
                            if let Some(t) = self.telemetry.as_mut() {
                                t.reg.add(t.no_issue_slots, 1);
                            }
                            let core = &mut self.cores[core_idx];
                            core.next_ready_at = core
                                .warps
                                .iter()
                                .filter(|w| !w.done && !w.at_barrier && !w.blocked)
                                .map(|w| w.ready_at)
                                .min()
                                .unwrap_or(u64::MAX);
                            break;
                        }
                    }
                }
            }
            if self.launches.iter().all(|l| l.finished()) {
                break;
            }
            if any_issue {
                self.cycle += 1;
            } else {
                self.profile.idle_skips += 1;
                // Event skip: jump to the next cycle anything becomes ready.
                let next = self
                    .cores
                    .iter()
                    .flat_map(|c| c.warps.iter())
                    .filter(|w| {
                        !w.done
                            && !w.at_barrier
                            && !w.blocked
                            && !self.launches[w.launch_idx].aborted
                    })
                    .map(|w| w.ready_at)
                    .min();
                match next {
                    // Clamp the skip to the watchdog budget so the error
                    // reports the budget cycle, not a far-future wakeup.
                    Some(n) => {
                        let target = n.max(self.cycle + 1).min(self.cfg.max_cycles);
                        if let Some(t) = self.telemetry.as_mut() {
                            t.reg.add(t.idle_skip_cycles, target - self.cycle);
                        }
                        self.cycle = target;
                    }
                    None => {
                        // Live warps exist but none can ever become ready.
                        // Distinguish warps parked on the exhausted device
                        // heap from barrier waits that can never complete.
                        let alloc_blocked =
                            self.cores.iter().flat_map(|c| c.warps.iter()).any(|w| {
                                !w.done && w.blocked && !self.launches[w.launch_idx].aborted
                            });
                        if alloc_blocked {
                            return Err(RunError::HeapDeadlock { cycle: self.cycle });
                        }
                        // Barrier deadlock — or workgroups remain but
                        // dispatch made no progress (impossible given the
                        // fit pre-check, but guard against spinning).
                        return Err(RunError::BarrierDeadlock { cycle: self.cycle });
                    }
                }
            }
        }
        Ok(())
    }

    fn exec_warp(&mut self, core_idx: usize, warp_idx: usize) -> Result<(), RunError> {
        let li = self.cores[core_idx].warps[warp_idx].launch_idx;
        // Disjoint field borrows: the kernel stays interned in its launch
        // (no per-issue `Arc` clone) while the warp mutates.
        let outcome = {
            let lstate = &self.launches[li];
            let ctx = ExecCtx {
                args: &lstate.launch.args,
                local_bases: &lstate.launch.local_bases,
                block_dim: u64::from(lstate.launch.launch.block),
                grid_dim: u64::from(lstate.launch.launch.grid),
            };
            let warp = &mut self.cores[core_idx].warps[warp_idx];
            warp.exec_simple(&lstate.launch.kernel, &lstate.recon, &ctx)
        };
        match outcome {
            SimpleOutcome::Done => {
                self.profile.alu_issues += 1;
                self.launches[li].report.instructions += 1;
                let warp = &mut self.cores[core_idx].warps[warp_idx];
                warp.ready_at = self.cycle + self.cfg.alu_latency;
            }
            SimpleOutcome::Retired => {
                self.profile.alu_issues += 1;
                self.launches[li].report.instructions += 1;
                self.retire_warp(core_idx, warp_idx);
            }
            SimpleOutcome::NeedsCore => {
                let pc = self.cores[core_idx].warps[warp_idx]
                    .pc()
                    .expect("NeedsCore implies a live pc");
                let instr = self.launches[li].launch.kernel.block(pc.0).instrs()[pc.1];
                match instr {
                    Instr::Bar => self.exec_barrier(core_idx, warp_idx),
                    Instr::Malloc { dst, size } => {
                        self.exec_malloc(core_idx, warp_idx, Some(dst), size)?
                    }
                    Instr::Free { ptr: _ } => {
                        // Timing-equivalent to an allocation round-trip.
                        self.exec_malloc(core_idx, warp_idx, None, gpushield_isa::Operand::Imm(0))?
                    }
                    Instr::Ld { .. } | Instr::St { .. } | Instr::AtomAdd { .. } => {
                        self.exec_mem(core_idx, warp_idx, li, pc, instr);
                    }
                    _ => unreachable!("exec_simple handles all other instructions"),
                }
            }
        }
        Ok(())
    }

    fn retire_warp(&mut self, core_idx: usize, warp_idx: usize) {
        let (li, wg) = {
            let w = &self.cores[core_idx].warps[warp_idx];
            (w.launch_idx, w.wg)
        };
        {
            let win = self.cores[core_idx].warps[warp_idx].warp_in_wg;
            self.emit(core_idx, li, wg, win, None, TraceKind::Retire);
        }
        // Release peers blocked on a barrier this warp will never reach:
        // a barrier above divergent exits would deadlock; well-formed
        // kernels place barriers in uniform control flow, so the remaining
        // warps simply reconverge among themselves.
        self.release_barrier_if_complete(core_idx, li, wg);
        let wg_done = self.cores[core_idx]
            .warps
            .iter()
            .filter(|w| w.launch_idx == li && w.wg == wg)
            .all(|w| w.done);
        if wg_done {
            let freed_regs = self.launches[li].warps_per_wg
                * usize::from(self.launches[li].launch.kernel.num_regs())
                * self.cfg.warp_width;
            let core = &mut self.cores[core_idx];
            let freed_shared: u64 = core
                .wgs
                .iter()
                .filter(|g| g.launch_idx == li && g.wg == wg)
                .map(|g| g.shared.len() as u64)
                .sum();
            core.warps.retain(|w| !(w.launch_idx == li && w.wg == wg));
            core.wgs.retain(|g| !(g.launch_idx == li && g.wg == wg));
            core.last_issued = None;
            core.regs_used = core.regs_used.saturating_sub(freed_regs);
            core.shared_used = core.shared_used.saturating_sub(freed_shared);
            let cycle = self.cycle;
            let lstate = &mut self.launches[li];
            lstate.wgs_retired += 1;
            if lstate.finished() {
                lstate.report.end_cycle = cycle;
                let kid = lstate.launch.kernel_id;
                if let Some(f) = self.flight.as_mut() {
                    f.record(cycle, FlightEvent::KernelComplete { kernel_id: kid });
                }
                if let Some(g) = self.guard.as_mut() {
                    g.on_kernel_end(kid);
                }
            }
        }
    }

    fn exec_barrier(&mut self, core_idx: usize, warp_idx: usize) {
        let (li, wg) = {
            let w = &mut self.cores[core_idx].warps[warp_idx];
            w.at_barrier = true;
            w.advance_pc();
            (w.launch_idx, w.wg)
        };
        self.profile.barrier_issues += 1;
        self.launches[li].report.instructions += 1;
        {
            let w = &self.cores[core_idx].warps[warp_idx];
            let (wgid, win) = (w.wg, w.warp_in_wg);
            self.emit(core_idx, li, wgid, win, None, TraceKind::Barrier);
        }
        self.release_barrier_if_complete(core_idx, li, wg);
    }

    fn release_barrier_if_complete(&mut self, core_idx: usize, li: usize, wg: u64) {
        let core = &mut self.cores[core_idx];
        let all_arrived = core
            .warps
            .iter()
            .filter(|w| w.launch_idx == li && w.wg == wg && !w.done)
            .all(|w| w.at_barrier);
        let any_waiting = core
            .warps
            .iter()
            .any(|w| w.launch_idx == li && w.wg == wg && w.at_barrier);
        if all_arrived && any_waiting {
            for w in core
                .warps
                .iter_mut()
                .filter(|w| w.launch_idx == li && w.wg == wg && w.at_barrier)
            {
                w.at_barrier = false;
                w.ready_at = self.cycle + 1;
            }
        }
    }

    fn exec_malloc(
        &mut self,
        core_idx: usize,
        warp_idx: usize,
        dst: Option<gpushield_isa::VReg>,
        size: gpushield_isa::Operand,
    ) -> Result<(), RunError> {
        let li = self.cores[core_idx].warps[warp_idx].launch_idx;
        let heap = match self.launches[li].launch.heap {
            Some(h) => h,
            None => {
                return Err(RunError::NoHeap {
                    kernel: self.launches[li].launch.kernel.name().to_string(),
                })
            }
        };
        let mut scratch = std::mem::take(&mut self.cores[core_idx].scratch);
        {
            let lstate = &self.launches[li];
            let ctx = ExecCtx {
                args: &lstate.launch.args,
                local_bases: &lstate.launch.local_bases,
                block_dim: u64::from(lstate.launch.launch.block),
                grid_dim: u64::from(lstate.launch.launch.grid),
            };
            let warp = &self.cores[core_idx].warps[warp_idx];
            scratch.lane_sizes.clear();
            scratch.lane_sizes.extend(
                (0..warp.width)
                    .map(|lane| warp.lane_active(lane).then(|| warp.eval(size, lane, &ctx))),
            );
        }
        let entry = self.heaps.entry(heap.tagged_base.va()).or_default();
        let mut done_at = self.cycle;
        let mut exhausted = false;
        scratch.results.clear();
        scratch.results.resize(scratch.lane_sizes.len(), None);
        for (lane, sz) in scratch.lane_sizes.iter().enumerate() {
            let Some(sz) = sz else { continue };
            // The device allocator is a serialized global resource: each
            // lane's request takes its turn (§5.2.1 footnote 2).
            let start = entry.lock_until.max(self.cycle);
            entry.lock_until = start + self.cfg.heap_alloc_cycles;
            done_at = done_at.max(entry.lock_until);
            if dst.is_some() {
                let aligned = sz.div_ceil(16).max(1) * 16;
                if entry.cursor + aligned <= heap.size {
                    let ptr = heap.tagged_base.raw() + entry.cursor;
                    entry.cursor += aligned;
                    scratch.results[lane] = Some(ptr);
                } else if self.cfg.malloc_blocks_on_exhaustion {
                    // The allocator parks the whole warp until memory is
                    // freed; with nothing freeing, the deadlock detector
                    // reports HeapDeadlock instead of spinning forever.
                    exhausted = true;
                    break;
                } else {
                    scratch.results[lane] = Some(0); // CUDA malloc returns NULL
                }
            }
        }
        if exhausted {
            self.cores[core_idx].warps[warp_idx].blocked = true;
            self.cores[core_idx].scratch = scratch;
            self.profile.malloc_issues += 1;
            self.launches[li].report.instructions += 1;
            return Ok(());
        }
        let warp = &mut self.cores[core_idx].warps[warp_idx];
        if let Some(dst) = dst {
            for (lane, r) in scratch.results.iter().enumerate() {
                if let Some(v) = r {
                    warp.set_reg(dst, lane, *v);
                }
            }
        }
        warp.ready_at = done_at;
        warp.advance_pc();
        self.profile.malloc_issues += 1;
        self.launches[li].report.instructions += 1;
        self.cores[core_idx].scratch = scratch;
        Ok(())
    }

    /// Applies every injected fault scheduled for the current access (see
    /// [`crate::fault`]): pointer-tag mangling and site-check falsification
    /// act on the in-flight access, RBT bit flips and RCache poisoning
    /// corrupt the metadata the bounds check will consult. Returns the
    /// (possibly mangled) pointer and (possibly falsified) decision.
    fn apply_due_faults(
        &mut self,
        core_idx: usize,
        mut ptr: TaggedPtr,
        mut decision: SiteCheck,
    ) -> (TaggedPtr, SiteCheck) {
        let Some(fs) = self.fault.as_mut() else {
            return (ptr, decision);
        };
        let seq = fs.begin_access();
        while let Some(spec) = fs.take_due(seq) {
            let applied = match spec.kind {
                FaultKind::TagMangle => {
                    ptr = fault::mangle_pointer(ptr, spec.entropy);
                    true
                }
                FaultKind::SiteCheckFalsify => {
                    decision = match decision {
                        SiteCheck::Static => SiteCheck::Runtime,
                        _ => SiteCheck::Static,
                    };
                    true
                }
                FaultKind::RbtBitFlip => {
                    fault::flip_rbt_bit(&mut *self.vm, fs.targets(), spec.entropy)
                }
                FaultKind::RcachePoison => self
                    .guard
                    .as_mut()
                    .is_some_and(|g| g.inject_metadata_fault(core_idx, spec.entropy)),
            };
            let cycle = self.cycle;
            fs.record(spec, cycle, seq, applied);
            if applied {
                if let Some(f) = self.flight.as_mut() {
                    f.record(
                        cycle,
                        FlightEvent::FaultInjected {
                            kind: spec.kind.code(),
                        },
                    );
                }
            }
        }
        (ptr, decision)
    }

    /// The full LSU + BCU pipeline for one warp-level memory instruction.
    fn exec_mem(
        &mut self,
        core_idx: usize,
        warp_idx: usize,
        li: usize,
        site: (gpushield_isa::BlockId, usize),
        instr: Instr,
    ) {
        let (is_store, addr, space, width, dst, src, is_atomic) = match instr {
            Instr::Ld {
                dst,
                addr,
                space,
                width,
            } => (false, addr, space, width, Some(dst), None, false),
            Instr::St {
                src,
                addr,
                space,
                width,
            } => (true, addr, space, width, None, Some(src), false),
            Instr::AtomAdd {
                dst,
                addr,
                space,
                width,
                src,
            } => (true, addr, space, width, Some(dst), Some(src), true),
            _ => unreachable!("exec_mem only receives Ld/St/AtomAdd"),
        };
        let width_b = width.bytes();

        // All per-lane buffers live in the core's reusable scratch; it is
        // moved out here and must be moved back on every exit path.
        let mut scratch = std::mem::take(&mut self.cores[core_idx].scratch);

        // ---- Phase 1: AGU — per-lane addresses and store values ----------
        let ptr = {
            let lstate = &self.launches[li];
            let ctx = ExecCtx {
                args: &lstate.launch.args,
                local_bases: &lstate.launch.local_bases,
                block_dim: u64::from(lstate.launch.launch.block),
                grid_dim: u64::from(lstate.launch.launch.grid),
            };
            let warp = &self.cores[core_idx].warps[warp_idx];
            scratch.lane_vas.clear();
            scratch.lane_vas.resize(warp.width, None);
            let mut ptr = TaggedPtr::from_raw(0);
            let mut ptr_set = false;
            #[allow(clippy::needless_range_loop)] // lane drives eval() too
            for lane in 0..warp.width {
                if !warp.lane_active(lane) {
                    continue;
                }
                let (base_raw, off) = match addr {
                    AddrExpr::Flat { addr } => (warp.eval(addr, lane, &ctx), 0u64),
                    AddrExpr::BaseOffset { base, offset } => {
                        (warp.eval(base, lane, &ctx), warp.eval(offset, lane, &ctx))
                    }
                    AddrExpr::BindingTable { bti, offset } => {
                        (ctx.args[usize::from(bti)], warp.eval(offset, lane, &ctx))
                    }
                };
                if !ptr_set {
                    ptr = TaggedPtr::from_raw(base_raw);
                    ptr_set = true;
                }
                let va = if space == MemSpace::Shared {
                    // Shared memory is addressed by plain offsets.
                    base_raw.wrapping_add(off)
                } else {
                    TaggedPtr::from_raw(base_raw).va().wrapping_add(off) & VA_MASK
                };
                scratch.lane_vas[lane] = Some(va);
            }
            scratch.store_vals.clear();
            if let Some(s) = src {
                scratch
                    .store_vals
                    .extend((0..warp.width).map(|lane| warp.eval(s, lane, &ctx)));
            }
            ptr
        };
        let has_store_vals = src.is_some();

        // ---- Shared memory: on-chip, no VM, no bounds checking -----------
        if space == MemSpace::Shared {
            self.exec_shared_mem(
                core_idx,
                warp_idx,
                li,
                &scratch.lane_vas,
                width_b,
                dst,
                has_store_vals.then_some(&scratch.store_vals[..]),
                is_atomic,
            );
            self.cores[core_idx].scratch = scratch;
            return;
        }

        // ---- Soundness-audit recording (run_recorded only) ---------------
        // Capture the attempted per-lane extremes *before* any verdict so
        // that a squashed or aborted out-of-bounds access is still visible
        // to the auditor.
        if let Some(obs) = self.launches[li].observed.as_mut() {
            for va in scratch.lane_vas.iter().flatten() {
                let end = va.saturating_add(width_b);
                let e = obs.entry(site).or_insert((*va, end));
                e.0 = e.0.min(*va);
                e.1 = e.1.max(end);
            }
        }

        // ---- Phase 2: translate + cache/TLB timing probe -----------------
        let mut translation_fault: Option<MemFault> = None;
        for va in scratch.lane_vas.iter().flatten() {
            if let Err(f) = self.vm.translate(*va) {
                translation_fault.get_or_insert(f);
            }
        }
        coalesce_warp_into(&scratch.lane_vas, width_b, &mut scratch.txs);
        let start = self.cycle.max(self.cores[core_idx].lsu_busy_until);
        let mut done_at = start + self.cfg.timings.l1_hit;
        let mut all_l1_hit = true;
        for tx in &scratch.txs {
            let Ok(pa) = self.vm.translate_bypass(tx.base) else {
                continue;
            };
            let core = &mut self.cores[core_idx];
            let t_ready = if core.l1tlb.access(tx.base) {
                start
            } else {
                self.shared.translate(tx.base, start)
            };
            let tx_done = if core.l1d.access(pa) {
                (start + self.cfg.timings.l1_hit).max(t_ready + 1)
            } else {
                all_l1_hit = false;
                self.shared
                    .access_data(pa, (start + self.cfg.timings.l1_hit).max(t_ready))
            };
            done_at = done_at.max(tx_done);
        }

        // ---- Phase 3: bounds check (GPUShield BCU or baseline guard) -----
        let mut ptr = ptr;
        let mut decision = self.launches[li].launch.plan.get(site);
        if self.fault.is_some() {
            (ptr, decision) = self.apply_due_faults(core_idx, ptr, decision);
        }
        let mut stall = 0u64;
        let mut verdict = GuardVerdict::Allow;
        if let Some(g) = self.guard.as_mut() {
            if decision == SiteCheck::Static {
                self.launches[li].report.checks_skipped += 1;
                if self.launches[li].launch.plan.certified(site) {
                    self.launches[li].report.checks_certified += 1;
                }
            } else if let Some(range) = warp_address_range(&scratch.lane_vas, width_b) {
                let access = MemAccess {
                    core: core_idx,
                    kernel_id: self.launches[li].launch.kernel_id,
                    is_store,
                    space,
                    pointer: ptr,
                    site,
                    range,
                    site_check: decision,
                    transactions: scratch.txs.len(),
                    active_lanes: scratch.lane_vas.iter().flatten().count(),
                    l1d_all_hit: all_l1_hit,
                };
                let chk = g.check(&access, self.vm);
                stall = chk.stall_cycles;
                verdict = chk.verdict;
                self.profile.bcu_checks += 1;
                let report = &mut self.launches[li].report;
                report.checks_performed += 1;
                report.stall_attribution.record(chk.path, chk.stall_cycles);
                if self.flight.is_some() {
                    let (wg, win) = {
                        let w = &self.cores[core_idx].warps[warp_idx];
                        (w.wg as u32, w.warp_in_wg as u16)
                    };
                    let cycle = self.cycle;
                    if let Some(f) = self.flight.as_mut() {
                        f.record(
                            cycle,
                            FlightEvent::CheckVerdict {
                                kernel_id: access.kernel_id,
                                wg,
                                warp: win,
                                block: site.0 .0,
                                idx: site.1 as u32,
                                path: chk.path.code(),
                                verdict: chk.verdict.code(),
                                is_store,
                                lo: range.0,
                                hi: range.1,
                            },
                        );
                    }
                }
            }
        }

        // ---- Phase 4: outcome -------------------------------------------
        match verdict {
            GuardVerdict::Fault => {
                self.note_flight_abort(core_idx, warp_idx, li, AbortReason::BoundsViolation);
                self.cores[core_idx].scratch = scratch;
                self.abort_launch(li, AbortReason::BoundsViolation);
                return;
            }
            GuardVerdict::Squash => {
                self.launches[li].report.violations_squashed += 1;
                if let Some(d) = dst {
                    // Squashed loads return zero (§5.5.2).
                    let warp = &mut self.cores[core_idx].warps[warp_idx];
                    for lane in 0..warp.width {
                        if warp.lane_active(lane) {
                            warp.set_reg(d, lane, 0);
                        }
                    }
                }
            }
            GuardVerdict::Allow => {
                if let Some(f) = translation_fault {
                    self.note_flight_abort(core_idx, warp_idx, li, AbortReason::MemFault(f));
                    self.cores[core_idx].scratch = scratch;
                    self.abort_launch(li, AbortReason::MemFault(f));
                    return;
                }
                // Functional access.
                let warp_width = self.cores[core_idx].warps[warp_idx].width;
                for (lane, lane_va) in scratch.lane_vas.iter().enumerate().take(warp_width) {
                    let Some(va) = *lane_va else { continue };
                    if is_atomic {
                        // Lanes are serialized in lane order (real hardware
                        // serializes same-address atomics; a fixed order
                        // keeps the simulation deterministic).
                        let old = self
                            .vm
                            .read_uint(va, width_b)
                            .expect("translation already verified");
                        let add = scratch.store_vals[lane];
                        self.vm
                            .write_uint(va, width_b, old.wrapping_add(add))
                            .expect("translation already verified");
                        let warp = &mut self.cores[core_idx].warps[warp_idx];
                        warp.set_reg(dst.expect("atomic has dst"), lane, old);
                    } else if is_store {
                        let v = scratch.store_vals[lane];
                        self.vm
                            .write_uint(va, width_b, v)
                            .expect("translation already verified");
                    } else {
                        let v = self
                            .vm
                            .read_uint(va, width_b)
                            .expect("translation already verified");
                        let warp = &mut self.cores[core_idx].warps[warp_idx];
                        warp.set_reg(dst.expect("load has dst"), lane, v);
                    }
                }
            }
        }

        // ---- Phase 5: timing commit --------------------------------------
        {
            let w = &self.cores[core_idx].warps[warp_idx];
            let (wgid, win) = (w.wg, w.warp_in_wg);
            self.emit(
                core_idx,
                li,
                wgid,
                win,
                Some(site),
                TraceKind::Mem {
                    space,
                    is_store,
                    transactions: scratch.txs.len().min(255) as u8,
                    stall: stall.min(255) as u8,
                },
            );
        }
        let atomic_serial = if is_atomic {
            scratch.lane_vas.iter().flatten().count() as u64
        } else {
            0
        };
        let n_txs = scratch.txs.len() as u64;
        let core = &mut self.cores[core_idx];
        core.lsu_busy_until = start + n_txs + stall + atomic_serial;
        let warp = &mut core.warps[warp_idx];
        warp.ready_at = done_at + stall + atomic_serial;
        warp.advance_pc();
        core.scratch = scratch;
        self.profile.mem_issues += 1;
        self.profile.lsu_transactions += n_txs;
        self.profile.bcu_stall_cycles += stall;
        if let Some(t) = self.telemetry.as_mut() {
            t.reg.observe(t.visible_stall, stall);
        }
        let report = &mut self.launches[li].report;
        report.instructions += 1;
        report.mem_instructions += 1;
        report.transactions += n_txs;
        report.guard_stall_cycles += stall;
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_shared_mem(
        &mut self,
        core_idx: usize,
        warp_idx: usize,
        li: usize,
        lane_vas: &[Option<u64>],
        width_b: u64,
        dst: Option<gpushield_isa::VReg>,
        store_vals: Option<&[u64]>,
        is_atomic: bool,
    ) {
        self.profile.shared_issues += 1;
        let wg = self.cores[core_idx].warps[warp_idx].wg;
        let start = self.cycle.max(self.cores[core_idx].lsu_busy_until);
        let done_at = start + self.cfg.timings.l1_hit;
        let core = &mut self.cores[core_idx];
        let wg_idx = core
            .wgs
            .iter()
            .position(|g| g.launch_idx == li && g.wg == wg)
            .expect("warp's workgroup is resident");
        // Split borrows: shared data and warp registers.
        let (wgs, warps) = (&mut core.wgs, &mut core.warps);
        let shared = &mut wgs[wg_idx].shared;
        let warp = &mut warps[warp_idx];
        let n = shared.len() as u64;
        for (lane, va) in lane_vas.iter().enumerate() {
            let Some(va) = va else { continue };
            if n == 0 {
                // Kernel accessed shared memory without declaring any;
                // reads yield zero, writes are dropped.
                if let Some(d) = dst {
                    warp.set_reg(d, lane, 0);
                }
                continue;
            }
            // Out-of-bounds shared accesses wrap inside the workgroup's
            // allocation (on-chip scratch is not protected by GPUShield;
            // Table 1 lists shared-memory overflow as possible).
            if is_atomic {
                let mut old_bytes = [0u8; 8];
                for i in 0..width_b {
                    old_bytes[i as usize] = shared[((va + i) % n) as usize];
                }
                let old = u64::from_le_bytes(old_bytes);
                let add = store_vals.expect("atomic has addend")[lane];
                let new_bytes = old.wrapping_add(add).to_le_bytes();
                for i in 0..width_b {
                    shared[((va + i) % n) as usize] = new_bytes[i as usize];
                }
                if let Some(d) = dst {
                    warp.set_reg(d, lane, old);
                }
                continue;
            }
            let mut bytes = [0u8; 8];
            for i in 0..width_b {
                let idx = ((va + i) % n) as usize;
                if let Some(vals) = store_vals {
                    shared[idx] = vals[lane].to_le_bytes()[i as usize];
                } else {
                    bytes[i as usize] = shared[idx];
                }
            }
            if let Some(d) = dst {
                warp.set_reg(d, lane, u64::from_le_bytes(bytes));
            }
        }
        core.lsu_busy_until = start + 1;
        let warp = &mut core.warps[warp_idx];
        warp.ready_at = done_at;
        warp.advance_pc();
        let (wgid, win) = {
            let w = &self.cores[core_idx].warps[warp_idx];
            (w.wg, w.warp_in_wg)
        };
        self.emit(
            core_idx,
            li,
            wgid,
            win,
            None,
            TraceKind::Mem {
                space: MemSpace::Shared,
                is_store: store_vals.is_some(),
                transactions: 1,
                stall: 0,
            },
        );
        let report = &mut self.launches[li].report;
        report.instructions += 1;
        report.mem_instructions += 1;
    }

    /// Records a `KernelAbort` flight event while the guilty warp is still
    /// resident — `abort_launch` strips every warp of the launch, so the
    /// attribution must be captured first.
    fn note_flight_abort(
        &mut self,
        core_idx: usize,
        warp_idx: usize,
        li: usize,
        reason: AbortReason,
    ) {
        if self.flight.is_none() {
            return;
        }
        let (wg, win) = {
            let w = &self.cores[core_idx].warps[warp_idx];
            (w.wg as u32, w.warp_in_wg as u16)
        };
        let kernel_id = self.launches[li].launch.kernel_id;
        let cycle = self.cycle;
        if let Some(f) = self.flight.as_mut() {
            f.record(
                cycle,
                FlightEvent::KernelAbort {
                    kernel_id,
                    wg,
                    warp: win,
                    reason: reason.code(),
                },
            );
        }
    }

    fn abort_launch(&mut self, li: usize, reason: AbortReason) {
        self.emit(0, li, 0, 0, None, TraceKind::Abort);
        let kernel_id = {
            let lstate = &mut self.launches[li];
            lstate.aborted = true;
            lstate.report.abort = Some(reason);
            lstate.report.end_cycle = self.cycle;
            lstate.launch.kernel_id
        };
        for core in &mut self.cores {
            core.warps.retain(|w| w.launch_idx != li);
            core.wgs.retain(|g| g.launch_idx != li);
            core.last_issued = None;
        }
        // Aborts are rare: recompute occupancy caches from scratch.
        for ci in 0..self.cores.len() {
            let regs = self.cores[ci].regs_in_use(&self.launches);
            self.cores[ci].regs_used = regs;
            self.cores[ci].shared_used = self.cores[ci].shared_in_use();
        }
        if let Some(g) = self.guard.as_mut() {
            g.on_kernel_end(kernel_id);
        }
    }

    fn into_report(self) -> RunReport {
        let mut l1d = gpushield_mem::CacheStats::default();
        let mut l1tlb = gpushield_mem::CacheStats::default();
        for c in &self.cores {
            let s = c.l1d.stats();
            l1d.hits += s.hits;
            l1d.misses += s.misses;
            l1d.evictions += s.evictions;
            let t = c.l1tlb.stats();
            l1tlb.hits += t.hits;
            l1tlb.misses += t.misses;
            l1tlb.evictions += t.evictions;
        }
        let dram = self.shared.dram_stats();
        let mut profile = self.profile;
        profile.dram_accesses = dram.requests;
        RunReport {
            cycles: self.cycle,
            launches: self
                .launches
                .into_iter()
                .map(|mut l| {
                    if let Some(obs) = l.observed.take() {
                        let mut v: Vec<_> = obs
                            .into_iter()
                            .map(|(site, (lo, hi))| crate::stats::ObservedRange { site, lo, hi })
                            .collect();
                        v.sort_unstable_by_key(|r| r.site);
                        l.report.observed_ranges = v;
                    }
                    l.report
                })
                .collect(),
            l1d,
            l1_tlb: l1tlb,
            l2: self.shared.l2_stats(),
            l2_tlb: self.shared.l2_tlb_stats(),
            dram,
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::{KernelLaunch, LaunchConfig};
    use gpushield_isa::{KernelBuilder, MemWidth, Operand};
    use gpushield_mem::AllocPolicy;
    use std::sync::Arc;

    fn write_iota_kernel() -> Arc<gpushield_isa::Kernel> {
        let mut b = KernelBuilder::new("iota");
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let off = b.shl(tid, Operand::Imm(2));
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
        b.ret();
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn end_to_end_store_kernel() {
        let mut vm = VirtualMemorySpace::new();
        let buf = vm.alloc(256 * 4, AllocPolicy::Device512).unwrap();
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let launch = KernelLaunch::new(write_iota_kernel(), LaunchConfig::new(16, 16))
            .arg(TaggedPtr::unprotected(buf.va).raw());
        let report = gpu.run(&mut vm, &[launch], None).unwrap();
        assert!(report.completed());
        for i in 0..256u64 {
            assert_eq!(vm.read_uint(buf.va + i * 4, 4).unwrap(), i, "element {i}");
        }
        assert!(report.cycles > 0);
        assert_eq!(report.launches[0].mem_instructions, 16 * 4); // 16 wgs × 4 warps
    }

    #[test]
    fn load_store_roundtrip_through_gpu() {
        // out[i] = in[i] * 2
        let mut b = KernelBuilder::new("dbl");
        let inp = b.param_buffer("in", true);
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let off = b.shl(tid, Operand::Imm(2));
        let x = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(inp, off));
        let y = b.mul(x, Operand::Imm(2));
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), y);
        b.ret();
        let k = Arc::new(b.finish().unwrap());

        let mut vm = VirtualMemorySpace::new();
        let a = vm.alloc(64 * 4, AllocPolicy::Device512).unwrap();
        let o = vm.alloc(64 * 4, AllocPolicy::Device512).unwrap();
        for i in 0..64u64 {
            vm.write_uint(a.va + i * 4, 4, i + 100).unwrap();
        }
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let launch = KernelLaunch::new(k, LaunchConfig::new(4, 16))
            .arg(TaggedPtr::unprotected(a.va).raw())
            .arg(TaggedPtr::unprotected(o.va).raw());
        let report = gpu.run(&mut vm, &[launch], None).unwrap();
        assert!(report.completed());
        for i in 0..64u64 {
            assert_eq!(vm.read_uint(o.va + i * 4, 4).unwrap(), (i + 100) * 2);
        }
        assert!(report.l1d.accesses() > 0);
    }

    #[test]
    fn unmapped_access_aborts_launch() {
        let mut b = KernelBuilder::new("wild");
        let out = b.param_buffer("out", false);
        // Store far outside any mapped region.
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(out, Operand::Imm(1 << 40)),
            Operand::Imm(1),
        );
        b.ret();
        let k = Arc::new(b.finish().unwrap());
        let mut vm = VirtualMemorySpace::new();
        let buf = vm.alloc(64, AllocPolicy::Device512).unwrap();
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let launch =
            KernelLaunch::new(k, LaunchConfig::new(1, 4)).arg(TaggedPtr::unprotected(buf.va).raw());
        let report = gpu.run(&mut vm, &[launch], None).unwrap();
        assert!(!report.completed());
        assert!(matches!(
            report.abort(),
            Some(AbortReason::MemFault(MemFault::Unmapped { .. }))
        ));
    }

    #[test]
    fn barrier_synchronizes_workgroup() {
        // shared[tid] = tid; bar; out[tid] = shared[tid ^ 1]
        let mut b = KernelBuilder::new("bar");
        let out = b.param_buffer("out", false);
        b.shared_mem(64 * 8);
        let tid = b.mov(b.thread_id());
        let soff = b.shl(tid, Operand::Imm(3));
        b.st(MemSpace::Shared, MemWidth::W8, b.flat(soff), tid);
        b.bar();
        let mate = b.xor(tid, Operand::Imm(1));
        let moff = b.shl(mate, Operand::Imm(3));
        let v = b.ld(MemSpace::Shared, MemWidth::W8, b.flat(moff));
        let goff = b.shl(tid, Operand::Imm(3));
        b.st(MemSpace::Global, MemWidth::W8, b.base_offset(out, goff), v);
        b.ret();
        let k = Arc::new(b.finish().unwrap());

        let mut vm = VirtualMemorySpace::new();
        let buf = vm.alloc(16 * 8, AllocPolicy::Device512).unwrap();
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let launch = KernelLaunch::new(k, LaunchConfig::new(1, 16))
            .arg(TaggedPtr::unprotected(buf.va).raw());
        let report = gpu.run(&mut vm, &[launch], None).unwrap();
        assert!(report.completed());
        for i in 0..16u64 {
            assert_eq!(vm.read_uint(buf.va + i * 8, 8).unwrap(), i ^ 1);
        }
    }

    #[test]
    fn device_malloc_returns_tagged_heap_pointers() {
        let mut b = KernelBuilder::new("heapuser");
        let out = b.param_buffer("out", false);
        let p = b.malloc(Operand::Imm(16));
        // Store through the heap pointer, then record it.
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(p, Operand::Imm(0)),
            Operand::Imm(0x5A),
        );
        let tid = b.global_thread_id();
        let off = b.shl(tid, Operand::Imm(3));
        b.st(MemSpace::Global, MemWidth::W8, b.base_offset(out, off), p);
        b.ret();
        let k = Arc::new(b.finish().unwrap());

        let mut vm = VirtualMemorySpace::new();
        let buf = vm.alloc(8 * 8, AllocPolicy::Device512).unwrap();
        let heap = vm.alloc(1 << 16, AllocPolicy::Isolated).unwrap();
        let tagged_heap = TaggedPtr::with_region_id(heap.va, 0x77);
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let launch = KernelLaunch::new(k, LaunchConfig::new(1, 8))
            .arg(TaggedPtr::unprotected(buf.va).raw())
            .heap(crate::launch::HeapDesc {
                tagged_base: tagged_heap,
                size: 1 << 16,
            });
        let report = gpu.run(&mut vm, &[launch], None).unwrap();
        assert!(report.completed());
        let mut seen = std::collections::HashSet::new();
        for i in 0..8u64 {
            let raw = vm.read_uint(buf.va + i * 8, 8).unwrap();
            let p = TaggedPtr::from_raw(raw);
            assert_eq!(p.info(), 0x77, "heap tag propagates to malloc results");
            assert!(p.va() >= heap.va && p.va() < heap.va + (1 << 16));
            assert!(seen.insert(p.va()), "allocations must not overlap");
            assert_eq!(vm.read_uint(p.va(), 4).unwrap(), 0x5A);
        }
    }

    #[test]
    fn malloc_without_heap_is_an_error() {
        let mut b = KernelBuilder::new("noheap");
        let _p = b.malloc(Operand::Imm(16));
        b.ret();
        let k = Arc::new(b.finish().unwrap());
        let mut vm = VirtualMemorySpace::new();
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let launch = KernelLaunch::new(k, LaunchConfig::new(1, 4));
        assert!(matches!(
            gpu.run(&mut vm, &[launch], None),
            Err(RunError::NoHeap { .. })
        ));
    }

    #[test]
    fn oversized_workgroup_rejected() {
        let mut vm = VirtualMemorySpace::new();
        let buf = vm.alloc(1 << 20, AllocPolicy::Device512).unwrap();
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        // test_tiny allows 64 threads per core; ask for 256.
        let launch = KernelLaunch::new(write_iota_kernel(), LaunchConfig::new(1, 256))
            .arg(TaggedPtr::unprotected(buf.va).raw());
        assert!(matches!(
            gpu.run(&mut vm, &[launch], None),
            Err(RunError::WorkgroupTooLarge { .. })
        ));
    }

    #[test]
    fn trace_records_lifecycle_in_order() {
        let mut vm = VirtualMemorySpace::new();
        let buf = vm.alloc(256 * 4, AllocPolicy::Device512).unwrap();
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let launch = KernelLaunch::new(write_iota_kernel(), LaunchConfig::new(2, 16))
            .arg(TaggedPtr::unprotected(buf.va).raw());
        let mut trace = crate::trace::Trace::new(10_000);
        let report = gpu
            .run_traced(&mut vm, &[launch], None, &mut trace)
            .unwrap();
        assert!(report.completed());
        let events = trace.events();
        assert!(!trace.truncated());
        // 2 dispatches, one mem + retire per warp (2 wgs x 4 warps).
        let dispatches = events
            .iter()
            .filter(|e| matches!(e.kind, crate::trace::TraceKind::Dispatch { .. }))
            .count();
        let mems = events
            .iter()
            .filter(|e| matches!(e.kind, crate::trace::TraceKind::Mem { .. }))
            .count();
        let retires = events
            .iter()
            .filter(|e| matches!(e.kind, crate::trace::TraceKind::Retire))
            .count();
        assert_eq!(dispatches, 2);
        assert_eq!(mems, 8);
        assert_eq!(retires, 8);
        // Cycles are non-decreasing.
        assert!(events.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        // A workgroup's dispatch precedes all of its events.
        let first_mem = events
            .iter()
            .position(|e| matches!(e.kind, crate::trace::TraceKind::Mem { .. }))
            .unwrap();
        let first_dispatch = events
            .iter()
            .position(|e| matches!(e.kind, crate::trace::TraceKind::Dispatch { .. }))
            .unwrap();
        assert!(first_dispatch < first_mem);
    }

    #[test]
    fn two_kernels_intercore_partition() {
        let mut vm = VirtualMemorySpace::new();
        let b1 = vm.alloc(256 * 4, AllocPolicy::Device512).unwrap();
        let b2 = vm.alloc(256 * 4, AllocPolicy::Device512).unwrap();
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let l1 = KernelLaunch::new(write_iota_kernel(), LaunchConfig::new(16, 16))
            .arg(TaggedPtr::unprotected(b1.va).raw());
        let l2 = KernelLaunch::new(write_iota_kernel(), LaunchConfig::new(16, 16))
            .arg(TaggedPtr::unprotected(b2.va).raw());
        let report = gpu
            .run_multi(&mut vm, &[l1, l2], MultiKernelMode::InterCore, None)
            .unwrap();
        assert!(report.completed());
        assert_eq!(vm.read_uint(b1.va + 4 * 255, 4).unwrap(), 255);
        assert_eq!(vm.read_uint(b2.va + 4 * 255, 4).unwrap(), 255);
    }

    #[test]
    fn divergent_kernel_writes_correct_lanes() {
        // if (tid % 2 == 0) out[tid] = 7 else out[tid] = 9
        let mut b = KernelBuilder::new("parity");
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let bit = b.and(tid, Operand::Imm(1));
        let is_even = b.eq(bit, Operand::Imm(0));
        let off = b.shl(tid, Operand::Imm(2));
        b.if_then_else(
            is_even,
            |b| {
                b.st(
                    MemSpace::Global,
                    MemWidth::W4,
                    b.base_offset(out, off),
                    Operand::Imm(7),
                );
            },
            |b| {
                b.st(
                    MemSpace::Global,
                    MemWidth::W4,
                    b.base_offset(out, off),
                    Operand::Imm(9),
                );
            },
        );
        b.ret();
        let k = Arc::new(b.finish().unwrap());

        let mut vm = VirtualMemorySpace::new();
        let buf = vm.alloc(32 * 4, AllocPolicy::Device512).unwrap();
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let launch = KernelLaunch::new(k, LaunchConfig::new(2, 16))
            .arg(TaggedPtr::unprotected(buf.va).raw());
        let report = gpu.run(&mut vm, &[launch], None).unwrap();
        assert!(report.completed());
        for i in 0..32u64 {
            let expect = if i % 2 == 0 { 7 } else { 9 };
            assert_eq!(vm.read_uint(buf.va + i * 4, 4).unwrap(), expect, "lane {i}");
        }
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use crate::launch::{KernelLaunch, LaunchConfig};
    use gpushield_isa::{KernelBuilder, MemWidth, Operand, TaggedPtr};
    use gpushield_mem::AllocPolicy;
    use std::sync::Arc;

    fn store_kernel() -> Arc<gpushield_isa::Kernel> {
        let mut b = KernelBuilder::new("store");
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let off = b.shl(tid, Operand::Imm(2));
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
        b.ret();
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn workgroups_spread_across_cores() {
        // 2 small workgroups on a 2-core GPU must land on different cores.
        let mut vm = VirtualMemorySpace::new();
        let buf = vm.alloc(64 * 4, AllocPolicy::Device512).unwrap();
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let launch = KernelLaunch::new(store_kernel(), LaunchConfig::new(2, 8))
            .arg(TaggedPtr::unprotected(buf.va).raw());
        let mut trace = crate::trace::Trace::new(64);
        let r = gpu
            .run_traced(&mut vm, &[launch], None, &mut trace)
            .unwrap();
        assert!(r.completed());
        let cores: std::collections::HashSet<usize> = trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, crate::trace::TraceKind::Dispatch { .. }))
            .map(|e| e.core)
            .collect();
        assert_eq!(cores.len(), 2, "round-robin dispatch");
    }

    #[test]
    fn shared_memory_capacity_serializes_workgroups() {
        // Each WG wants all of the core's shared memory, so resident WGs
        // are limited to one per core at a time — but all complete.
        let mut b = KernelBuilder::new("sharedhog");
        b.shared_mem(4096); // == test_tiny's shared_per_core
        let out = b.param_buffer("out", false);
        let tid = b.global_thread_id();
        let soff = b.shl(b.thread_id(), Operand::Imm(2));
        b.st(MemSpace::Shared, MemWidth::W4, b.flat(soff), tid);
        b.bar();
        let off = b.shl(tid, Operand::Imm(2));
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
        b.ret();
        let k = Arc::new(b.finish().unwrap());
        let mut vm = VirtualMemorySpace::new();
        let buf = vm.alloc(64 * 4, AllocPolicy::Device512).unwrap();
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let launch =
            KernelLaunch::new(k, LaunchConfig::new(8, 8)).arg(TaggedPtr::unprotected(buf.va).raw());
        let r = gpu.run(&mut vm, &[launch], None).unwrap();
        assert!(r.completed());
        for i in 0..64u64 {
            assert_eq!(vm.read_uint(buf.va + i * 4, 4).unwrap(), i);
        }
    }

    #[test]
    fn intel_config_runs_end_to_end() {
        let mut vm = VirtualMemorySpace::new();
        let buf = vm.alloc(512 * 4, AllocPolicy::Device512).unwrap();
        let mut gpu = Gpu::new(GpuConfig::intel());
        let launch = KernelLaunch::new(store_kernel(), LaunchConfig::new(2, 256))
            .arg(TaggedPtr::unprotected(buf.va).raw());
        let r = gpu.run(&mut vm, &[launch], None).unwrap();
        assert!(r.completed());
        assert_eq!(vm.read_uint(buf.va + 511 * 4, 4).unwrap(), 511);
    }

    #[test]
    fn atomic_serialization_costs_more_than_plain_stores() {
        fn cycles(atomic: bool) -> u64 {
            let mut b = KernelBuilder::new("atomcost");
            let out = b.param_buffer("out", false);
            let tid = b.global_thread_id();
            let off = b.shl(tid, Operand::Imm(2));
            if atomic {
                let _ = b.atom_add(
                    MemSpace::Global,
                    MemWidth::W4,
                    b.base_offset(out, off),
                    Operand::Imm(1),
                );
            } else {
                b.st(MemSpace::Global, MemWidth::W4, b.base_offset(out, off), tid);
            }
            b.ret();
            let k = Arc::new(b.finish().unwrap());
            let mut vm = VirtualMemorySpace::new();
            let buf = vm.alloc(256 * 4, AllocPolicy::Device512).unwrap();
            let mut gpu = Gpu::new(GpuConfig::test_tiny());
            let launch = KernelLaunch::new(k, LaunchConfig::new(4, 16))
                .arg(TaggedPtr::unprotected(buf.va).raw());
            gpu.run(&mut vm, &[launch], None).unwrap().cycles
        }
        assert!(
            cycles(true) > cycles(false),
            "atomics must pay lane serialization"
        );
    }

    #[test]
    fn report_cycles_match_launch_span() {
        let mut vm = VirtualMemorySpace::new();
        let buf = vm.alloc(64 * 4, AllocPolicy::Device512).unwrap();
        let mut gpu = Gpu::new(GpuConfig::test_tiny());
        let launch = KernelLaunch::new(store_kernel(), LaunchConfig::new(2, 8))
            .arg(TaggedPtr::unprotected(buf.va).raw());
        let r = gpu.run(&mut vm, &[launch], None).unwrap();
        let l = &r.launches[0];
        assert!(l.end_cycle >= l.start_cycle);
        assert!(l.cycles() <= r.cycles);
        assert!(l.instructions >= l.mem_instructions);
    }
}
