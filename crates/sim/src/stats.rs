//! Run reports and statistics.

use crate::guard::CheckPath;
use gpushield_isa::BlockId;
use gpushield_mem::{CacheStats, DramStats, MemFault, TlbStats};
use gpushield_telemetry::Registry;
use std::fmt;

/// Why a launch terminated early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// A hardware translation fault (illegal memory access — what an
    /// unprotected GPU reports only when crossing a mapped region, Fig. 4
    /// case 3).
    MemFault(MemFault),
    /// The bounds-checking mechanism raised a precise exception (§5.5.2).
    BoundsViolation,
}

impl AbortReason {
    /// Stable integer code for flight-recorder payloads (the `MemFault`
    /// detail is not round-tripped; forensics renders the class only).
    pub fn code(&self) -> u8 {
        match self {
            AbortReason::BoundsViolation => 0,
            AbortReason::MemFault(_) => 1,
        }
    }

    /// Render a flight-recorder code back to a stable class name.
    pub fn code_name(code: u8) -> &'static str {
        match code {
            0 => "bounds-violation",
            1 => "mem-fault",
            _ => "unknown",
        }
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::MemFault(m) => write!(f, "kernel aborted: {m}"),
            AbortReason::BoundsViolation => f.write_str("kernel aborted: bounds violation"),
        }
    }
}

/// The extreme addresses one static memory instruction *attempted* to
/// touch during a recorded run (see [`crate::Gpu::run_recorded`]).
///
/// Ranges are captured after address generation but before the bounds
/// check renders a verdict, so an out-of-bounds attempt is visible here
/// even when the guard squashed or aborted it — exactly what a soundness
/// audit of statically elided checks needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedRange {
    /// The memory instruction (block, instruction index).
    pub site: (BlockId, usize),
    /// Lowest byte address any lane attempted (inclusive).
    pub lo: u64,
    /// One past the highest byte address any lane attempted (exclusive).
    pub hi: u64,
}

/// Per-launch outcome and counters.
#[derive(Debug, Clone, Default)]
pub struct LaunchReport {
    /// Kernel name.
    pub kernel: String,
    /// Driver-assigned kernel ID.
    pub kernel_id: u16,
    /// Cycle the first workgroup was dispatched.
    pub start_cycle: u64,
    /// Cycle the last warp retired (or the launch aborted).
    pub end_cycle: u64,
    /// Dynamic instructions executed (per warp, not per lane).
    pub instructions: u64,
    /// Dynamic memory instructions executed (per warp).
    pub mem_instructions: u64,
    /// Coalesced memory transactions issued.
    pub transactions: u64,
    /// Warp-level bounds checks performed at runtime.
    pub checks_performed: u64,
    /// Warp-level bounds checks skipped thanks to static analysis.
    pub checks_skipped: u64,
    /// Subset of [`checks_skipped`] whose elision is backed by a discharged
    /// proof certificate ([`gpushield_isa::SiteCert`]) rather than a plain
    /// Static plan entry — the skip-with-certificate accounting the
    /// soundness auditor reconciles against claimed windows.
    ///
    /// [`checks_skipped`]: LaunchReport::checks_skipped
    pub checks_certified: u64,
    /// Total visible BCU stall cycles charged to the LSUs.
    pub guard_stall_cycles: u64,
    /// Violations squashed (log-and-continue mode).
    pub violations_squashed: u64,
    /// Early-termination reason, if any.
    pub abort: Option<AbortReason>,
    /// Per-site observed address extremes, sorted by site. Empty unless the
    /// run was started via [`crate::Gpu::run_recorded`].
    pub observed_ranges: Vec<ObservedRange>,
    /// Per-path bounds-check counts and visible stall cycles (the Fig. 13
    /// attribution axis). Always recorded — plain `u64` increments on an
    /// already-taken branch, same philosophy as [`SimProfile`].
    pub stall_attribution: StallAttribution,
}

impl LaunchReport {
    /// Wall-clock cycles this launch occupied.
    pub fn cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }

    /// Fraction of issued instructions that were memory operations — the
    /// quantity §8.5 cites for streamcluster (31.22% load/store).
    pub fn mem_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mem_instructions as f64 / self.instructions as f64
        }
    }

    /// Warp instructions per cycle for this launch.
    pub fn ipc(&self) -> f64 {
        let c = self.cycles();
        if c == 0 {
            0.0
        } else {
            self.instructions as f64 / c as f64
        }
    }

    /// True when the launch ran to completion.
    pub fn completed(&self) -> bool {
        self.abort.is_none()
    }
}

/// Bounds-check counts and visible stall cycles split by the metadata
/// path that resolved each check — the simulator-side analogue of the
/// paper's Fig. 13 overhead attribution. A "count" is one warp-level
/// guard consultation; a "stall" is the portion of
/// [`LaunchReport::guard_stall_cycles`] charged to that path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallAttribution {
    /// Checks resolved by the per-core L1 RCache.
    pub l1_hits: u64,
    /// Checks that missed L1 and hit the shared L2 RCache.
    pub l2_hits: u64,
    /// Checks that missed both RCaches and fetched the RBT entry from
    /// device memory.
    pub rbt_fetches: u64,
    /// Type 3 size-embedded checks (no table lookup).
    pub type3_checks: u64,
    /// Software-instrumentation checks (baseline tools).
    pub software_checks: u64,
    /// Consultations that checked nothing (unprotected pointers).
    pub unchecked: u64,
    /// Visible stall cycles charged by L1-RCache-hit checks (the
    /// single-cycle Dcache-hit/RCache-lookup stall of Fig. 12).
    pub l1_stall_cycles: u64,
    /// Visible stall cycles charged by L2-RCache-hit checks.
    pub l2_stall_cycles: u64,
    /// Visible stall cycles charged by RBT fetches.
    pub rbt_stall_cycles: u64,
    /// Visible stall cycles charged by Type 3 checks.
    pub type3_stall_cycles: u64,
    /// Visible stall cycles charged by software checks.
    pub software_stall_cycles: u64,
}

impl StallAttribution {
    /// Records one guard consultation outcome.
    pub fn record(&mut self, path: CheckPath, stall_cycles: u64) {
        match path {
            CheckPath::Unchecked => self.unchecked += 1,
            CheckPath::L1RCache => {
                self.l1_hits += 1;
                self.l1_stall_cycles += stall_cycles;
            }
            CheckPath::L2RCache => {
                self.l2_hits += 1;
                self.l2_stall_cycles += stall_cycles;
            }
            CheckPath::RbtFetch => {
                self.rbt_fetches += 1;
                self.rbt_stall_cycles += stall_cycles;
            }
            CheckPath::SizeEmbedded => {
                self.type3_checks += 1;
                self.type3_stall_cycles += stall_cycles;
            }
            CheckPath::Software => {
                self.software_checks += 1;
                self.software_stall_cycles += stall_cycles;
            }
        }
    }

    /// Accumulates another attribution into this one.
    pub fn merge(&mut self, other: &StallAttribution) {
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.rbt_fetches += other.rbt_fetches;
        self.type3_checks += other.type3_checks;
        self.software_checks += other.software_checks;
        self.unchecked += other.unchecked;
        self.l1_stall_cycles += other.l1_stall_cycles;
        self.l2_stall_cycles += other.l2_stall_cycles;
        self.rbt_stall_cycles += other.rbt_stall_cycles;
        self.type3_stall_cycles += other.type3_stall_cycles;
        self.software_stall_cycles += other.software_stall_cycles;
    }

    /// Total guard consultations recorded (all paths, including
    /// unchecked ones).
    pub fn consultations(&self) -> u64 {
        self.l1_hits
            + self.l2_hits
            + self.rbt_fetches
            + self.type3_checks
            + self.software_checks
            + self.unchecked
    }

    /// Total visible stall cycles across all paths — reconciles with
    /// [`LaunchReport::guard_stall_cycles`].
    pub fn stall_cycles(&self) -> u64 {
        self.l1_stall_cycles
            + self.l2_stall_cycles
            + self.rbt_stall_cycles
            + self.type3_stall_cycles
            + self.software_stall_cycles
    }

    /// Publishes per-path counters under `<prefix>.<path>.{checks,stall_cycles}`.
    pub fn publish(&self, reg: &mut Registry, prefix: &str) {
        if !reg.enabled() {
            return;
        }
        let pairs: [(&str, u64, u64); 5] = [
            ("l1_rcache", self.l1_hits, self.l1_stall_cycles),
            ("l2_rcache", self.l2_hits, self.l2_stall_cycles),
            ("rbt_fetch", self.rbt_fetches, self.rbt_stall_cycles),
            ("size_embedded", self.type3_checks, self.type3_stall_cycles),
            ("software", self.software_checks, self.software_stall_cycles),
        ];
        for (label, checks, stalls) in pairs {
            reg.add_named(&format!("{prefix}.{label}.checks"), checks);
            reg.add_named(&format!("{prefix}.{label}.stall_cycles"), stalls);
        }
        reg.add_named(&format!("{prefix}.unchecked.checks"), self.unchecked);
    }
}

/// Cheap per-phase counters for the simulator's own hot path (the
/// `sim-profile` observability layer). Every counter is a plain `u64`
/// increment on an already-taken branch, so keeping them always-on does
/// not perturb the timing model — they measure *simulator* work, not
/// simulated-machine behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimProfile {
    /// ALU/control instructions issued (the `exec_simple` fast path).
    pub alu_issues: u64,
    /// Global/local memory instructions issued to the LSU.
    pub mem_issues: u64,
    /// Shared-memory instructions issued.
    pub shared_issues: u64,
    /// Barrier instructions issued (including re-checks while waiting).
    pub barrier_issues: u64,
    /// Device-side `malloc`/`free` instructions issued.
    pub malloc_issues: u64,
    /// Coalesced transactions pushed through the LSU pipeline.
    pub lsu_transactions: u64,
    /// Warp-level bounds checks handed to the guard (BCU or SW).
    pub bcu_checks: u64,
    /// Visible stall cycles the guard charged to LSUs.
    pub bcu_stall_cycles: u64,
    /// Transactions that reached DRAM (L2 misses).
    pub dram_accesses: u64,
    /// Scheduler passes that found no eligible warp on a core.
    pub idle_skips: u64,
}

impl SimProfile {
    /// Accumulates another profile into this one (used when aggregating
    /// across launches or whole runs).
    pub fn merge(&mut self, other: &SimProfile) {
        self.alu_issues += other.alu_issues;
        self.mem_issues += other.mem_issues;
        self.shared_issues += other.shared_issues;
        self.barrier_issues += other.barrier_issues;
        self.malloc_issues += other.malloc_issues;
        self.lsu_transactions += other.lsu_transactions;
        self.bcu_checks += other.bcu_checks;
        self.bcu_stall_cycles += other.bcu_stall_cycles;
        self.dram_accesses += other.dram_accesses;
        self.idle_skips += other.idle_skips;
    }

    /// Total instructions issued across all phases.
    pub fn issues(&self) -> u64 {
        self.alu_issues
            + self.mem_issues
            + self.shared_issues
            + self.barrier_issues
            + self.malloc_issues
    }

    /// Field-wise difference `self - other` (saturating). Used to carve a
    /// per-experiment slice out of cumulative process-wide totals.
    pub fn diff(&self, other: &SimProfile) -> SimProfile {
        SimProfile {
            alu_issues: self.alu_issues.saturating_sub(other.alu_issues),
            mem_issues: self.mem_issues.saturating_sub(other.mem_issues),
            shared_issues: self.shared_issues.saturating_sub(other.shared_issues),
            barrier_issues: self.barrier_issues.saturating_sub(other.barrier_issues),
            malloc_issues: self.malloc_issues.saturating_sub(other.malloc_issues),
            lsu_transactions: self.lsu_transactions.saturating_sub(other.lsu_transactions),
            bcu_checks: self.bcu_checks.saturating_sub(other.bcu_checks),
            bcu_stall_cycles: self.bcu_stall_cycles.saturating_sub(other.bcu_stall_cycles),
            dram_accesses: self.dram_accesses.saturating_sub(other.dram_accesses),
            idle_skips: self.idle_skips.saturating_sub(other.idle_skips),
        }
    }

    fn fields(&self) -> [(&'static str, u64); 10] {
        [
            ("alu_issues", self.alu_issues),
            ("mem_issues", self.mem_issues),
            ("shared_issues", self.shared_issues),
            ("barrier_issues", self.barrier_issues),
            ("malloc_issues", self.malloc_issues),
            ("lsu_transactions", self.lsu_transactions),
            ("bcu_checks", self.bcu_checks),
            ("bcu_stall_cycles", self.bcu_stall_cycles),
            ("dram_accesses", self.dram_accesses),
            ("idle_skips", self.idle_skips),
        ]
    }

    /// Publishes every field as a `sim.profile.*` gauge — the single
    /// source of truth the `throughput` and `profile` bins and the
    /// per-exhibit `results/<id>.json` telemetry sections all render from.
    /// Use on an already-merged profile; last write wins.
    pub fn publish(&self, reg: &mut Registry) {
        if !reg.enabled() {
            return;
        }
        for (name, v) in self.fields() {
            reg.set_named(&format!("sim.profile.{name}"), v);
        }
    }

    /// Publishes every field as an accumulating `sim.profile.*` counter —
    /// the form [`publish_run_report`] uses, so instrumenting several
    /// launches into one registry yields workload totals.
    pub fn publish_cumulative(&self, reg: &mut Registry) {
        if !reg.enabled() {
            return;
        }
        for (name, v) in self.fields() {
            reg.add_named(&format!("sim.profile.{name}"), v);
        }
    }
}

impl fmt::Display for SimProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "issue alu={} mem={} shared={} barrier={} malloc={} | \
             lsu tx={} bcu checks={} stalls={} | dram={} idle={}",
            self.alu_issues,
            self.mem_issues,
            self.shared_issues,
            self.barrier_issues,
            self.malloc_issues,
            self.lsu_transactions,
            self.bcu_checks,
            self.bcu_stall_cycles,
            self.dram_accesses,
            self.idle_skips
        )
    }
}

/// Whole-run outcome: per-launch reports plus shared-resource statistics.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Total cycles until every launch finished.
    pub cycles: u64,
    /// Per-launch reports, in launch order.
    pub launches: Vec<LaunchReport>,
    /// Aggregated per-core L1 Dcache statistics.
    pub l1d: CacheStats,
    /// Aggregated per-core L1 TLB statistics.
    pub l1_tlb: TlbStats,
    /// Shared L2 statistics.
    pub l2: CacheStats,
    /// Shared L2 TLB statistics.
    pub l2_tlb: TlbStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Simulator hot-path phase counters (see [`SimProfile`]).
    pub profile: SimProfile,
}

impl RunReport {
    /// Total dynamic instructions across launches.
    pub fn instructions(&self) -> u64 {
        self.launches.iter().map(|l| l.instructions).sum()
    }

    /// First abort across launches, if any.
    pub fn abort(&self) -> Option<AbortReason> {
        self.launches.iter().find_map(|l| l.abort)
    }

    /// True when every launch completed.
    pub fn completed(&self) -> bool {
        self.launches.iter().all(|l| l.completed())
    }

    /// Fraction of runtime checks eliminated by static analysis, in
    /// `[0, 1]` (the right-hand axis of paper Figs. 17 and 19).
    pub fn check_reduction(&self) -> f64 {
        let performed: u64 = self.launches.iter().map(|l| l.checks_performed).sum();
        let skipped: u64 = self.launches.iter().map(|l| l.checks_skipped).sum();
        let total = performed + skipped;
        if total == 0 {
            0.0
        } else {
            skipped as f64 / total as f64
        }
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run: {} cycles, {} launches",
            self.cycles,
            self.launches.len()
        )?;
        for l in &self.launches {
            writeln!(
                f,
                "  {} (id {}): {} cycles, {} instrs, {} mem, checks {}/{} skipped{}",
                l.kernel,
                l.kernel_id,
                l.cycles(),
                l.instructions,
                l.mem_instructions,
                l.checks_skipped,
                l.checks_performed + l.checks_skipped,
                match l.abort {
                    Some(a) => format!(" [{a}]"),
                    None => String::new(),
                }
            )?;
        }
        writeln!(f, "  L1D {} | L2 {}", self.l1d, self.l2)
    }
}

/// Publishes an entire [`RunReport`] into a telemetry registry: launch
/// totals as `sim.launch.*` counters, per-path stall attribution under
/// `sim.stall.*`, the hot-path profile as `sim.profile.*` gauges, and the
/// memory-hierarchy statistics under `mem.*`.
///
/// Counters *accumulate* across calls, so publishing several reports into
/// one registry yields workload-level totals; gauges are last-write-wins.
pub fn publish_run_report(reg: &mut Registry, report: &RunReport) {
    if !reg.enabled() {
        return;
    }
    reg.set_named("sim.run.cycles", report.cycles);
    reg.add_named("sim.run.launches", report.launches.len() as u64);
    let mut attribution = StallAttribution::default();
    for l in &report.launches {
        reg.add_named("sim.launch.instructions", l.instructions);
        reg.add_named("sim.launch.mem_instructions", l.mem_instructions);
        reg.add_named("sim.launch.transactions", l.transactions);
        reg.add_named("sim.launch.checks_performed", l.checks_performed);
        reg.add_named("sim.launch.checks_skipped", l.checks_skipped);
        reg.add_named("sim.launch.checks_certified", l.checks_certified);
        reg.add_named("sim.launch.guard_stall_cycles", l.guard_stall_cycles);
        reg.add_named("sim.launch.violations_squashed", l.violations_squashed);
        // Adding 0 still registers the key, keeping the schema stable
        // between aborting and clean runs.
        reg.add_named("sim.launch.aborts", u64::from(l.abort.is_some()));
        attribution.merge(&l.stall_attribution);
    }
    attribution.publish(reg, "sim.stall");
    report.profile.publish_cumulative(reg);
    gpushield_mem::publish_cache_stats(reg, "mem.l1d", &report.l1d);
    gpushield_mem::publish_cache_stats(reg, "mem.l2", &report.l2);
    gpushield_mem::publish_tlb_stats(reg, "mem.l1_tlb", &report.l1_tlb);
    gpushield_mem::publish_tlb_stats(reg, "mem.l2_tlb", &report.l2_tlb);
    gpushield_mem::publish_dram_stats(reg, "mem.dram", &report.dram);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_reduction_fraction() {
        let mut r = RunReport::default();
        r.launches.push(LaunchReport {
            checks_performed: 25,
            checks_skipped: 75,
            ..LaunchReport::default()
        });
        assert!((r.check_reduction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_run_has_zero_reduction() {
        assert_eq!(RunReport::default().check_reduction(), 0.0);
    }

    #[test]
    fn abort_propagates() {
        let mut r = RunReport::default();
        r.launches.push(LaunchReport::default());
        assert!(r.completed());
        r.launches.push(LaunchReport {
            abort: Some(AbortReason::BoundsViolation),
            ..LaunchReport::default()
        });
        assert!(!r.completed());
        assert_eq!(r.abort(), Some(AbortReason::BoundsViolation));
    }
}
