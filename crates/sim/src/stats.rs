//! Run reports and statistics.

use gpushield_isa::BlockId;
use gpushield_mem::{CacheStats, DramStats, MemFault, TlbStats};
use std::fmt;

/// Why a launch terminated early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// A hardware translation fault (illegal memory access — what an
    /// unprotected GPU reports only when crossing a mapped region, Fig. 4
    /// case 3).
    MemFault(MemFault),
    /// The bounds-checking mechanism raised a precise exception (§5.5.2).
    BoundsViolation,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::MemFault(m) => write!(f, "kernel aborted: {m}"),
            AbortReason::BoundsViolation => f.write_str("kernel aborted: bounds violation"),
        }
    }
}

/// The extreme addresses one static memory instruction *attempted* to
/// touch during a recorded run (see [`crate::Gpu::run_recorded`]).
///
/// Ranges are captured after address generation but before the bounds
/// check renders a verdict, so an out-of-bounds attempt is visible here
/// even when the guard squashed or aborted it — exactly what a soundness
/// audit of statically elided checks needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedRange {
    /// The memory instruction (block, instruction index).
    pub site: (BlockId, usize),
    /// Lowest byte address any lane attempted (inclusive).
    pub lo: u64,
    /// One past the highest byte address any lane attempted (exclusive).
    pub hi: u64,
}

/// Per-launch outcome and counters.
#[derive(Debug, Clone, Default)]
pub struct LaunchReport {
    /// Kernel name.
    pub kernel: String,
    /// Driver-assigned kernel ID.
    pub kernel_id: u16,
    /// Cycle the first workgroup was dispatched.
    pub start_cycle: u64,
    /// Cycle the last warp retired (or the launch aborted).
    pub end_cycle: u64,
    /// Dynamic instructions executed (per warp, not per lane).
    pub instructions: u64,
    /// Dynamic memory instructions executed (per warp).
    pub mem_instructions: u64,
    /// Coalesced memory transactions issued.
    pub transactions: u64,
    /// Warp-level bounds checks performed at runtime.
    pub checks_performed: u64,
    /// Warp-level bounds checks skipped thanks to static analysis.
    pub checks_skipped: u64,
    /// Total visible BCU stall cycles charged to the LSUs.
    pub guard_stall_cycles: u64,
    /// Violations squashed (log-and-continue mode).
    pub violations_squashed: u64,
    /// Early-termination reason, if any.
    pub abort: Option<AbortReason>,
    /// Per-site observed address extremes, sorted by site. Empty unless the
    /// run was started via [`crate::Gpu::run_recorded`].
    pub observed_ranges: Vec<ObservedRange>,
}

impl LaunchReport {
    /// Wall-clock cycles this launch occupied.
    pub fn cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }

    /// Fraction of issued instructions that were memory operations — the
    /// quantity §8.5 cites for streamcluster (31.22% load/store).
    pub fn mem_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mem_instructions as f64 / self.instructions as f64
        }
    }

    /// Warp instructions per cycle for this launch.
    pub fn ipc(&self) -> f64 {
        let c = self.cycles();
        if c == 0 {
            0.0
        } else {
            self.instructions as f64 / c as f64
        }
    }

    /// True when the launch ran to completion.
    pub fn completed(&self) -> bool {
        self.abort.is_none()
    }
}

/// Cheap per-phase counters for the simulator's own hot path (the
/// `sim-profile` observability layer). Every counter is a plain `u64`
/// increment on an already-taken branch, so keeping them always-on does
/// not perturb the timing model — they measure *simulator* work, not
/// simulated-machine behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimProfile {
    /// ALU/control instructions issued (the `exec_simple` fast path).
    pub alu_issues: u64,
    /// Global/local memory instructions issued to the LSU.
    pub mem_issues: u64,
    /// Shared-memory instructions issued.
    pub shared_issues: u64,
    /// Barrier instructions issued (including re-checks while waiting).
    pub barrier_issues: u64,
    /// Device-side `malloc`/`free` instructions issued.
    pub malloc_issues: u64,
    /// Coalesced transactions pushed through the LSU pipeline.
    pub lsu_transactions: u64,
    /// Warp-level bounds checks handed to the guard (BCU or SW).
    pub bcu_checks: u64,
    /// Visible stall cycles the guard charged to LSUs.
    pub bcu_stall_cycles: u64,
    /// Transactions that reached DRAM (L2 misses).
    pub dram_accesses: u64,
    /// Scheduler passes that found no eligible warp on a core.
    pub idle_skips: u64,
}

impl SimProfile {
    /// Accumulates another profile into this one (used when aggregating
    /// across launches or whole runs).
    pub fn merge(&mut self, other: &SimProfile) {
        self.alu_issues += other.alu_issues;
        self.mem_issues += other.mem_issues;
        self.shared_issues += other.shared_issues;
        self.barrier_issues += other.barrier_issues;
        self.malloc_issues += other.malloc_issues;
        self.lsu_transactions += other.lsu_transactions;
        self.bcu_checks += other.bcu_checks;
        self.bcu_stall_cycles += other.bcu_stall_cycles;
        self.dram_accesses += other.dram_accesses;
        self.idle_skips += other.idle_skips;
    }

    /// Total instructions issued across all phases.
    pub fn issues(&self) -> u64 {
        self.alu_issues
            + self.mem_issues
            + self.shared_issues
            + self.barrier_issues
            + self.malloc_issues
    }
}

impl fmt::Display for SimProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "issue alu={} mem={} shared={} barrier={} malloc={} | \
             lsu tx={} bcu checks={} stalls={} | dram={} idle={}",
            self.alu_issues,
            self.mem_issues,
            self.shared_issues,
            self.barrier_issues,
            self.malloc_issues,
            self.lsu_transactions,
            self.bcu_checks,
            self.bcu_stall_cycles,
            self.dram_accesses,
            self.idle_skips
        )
    }
}

/// Whole-run outcome: per-launch reports plus shared-resource statistics.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Total cycles until every launch finished.
    pub cycles: u64,
    /// Per-launch reports, in launch order.
    pub launches: Vec<LaunchReport>,
    /// Aggregated per-core L1 Dcache statistics.
    pub l1d: CacheStats,
    /// Aggregated per-core L1 TLB statistics.
    pub l1_tlb: TlbStats,
    /// Shared L2 statistics.
    pub l2: CacheStats,
    /// Shared L2 TLB statistics.
    pub l2_tlb: TlbStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Simulator hot-path phase counters (see [`SimProfile`]).
    pub profile: SimProfile,
}

impl RunReport {
    /// Total dynamic instructions across launches.
    pub fn instructions(&self) -> u64 {
        self.launches.iter().map(|l| l.instructions).sum()
    }

    /// First abort across launches, if any.
    pub fn abort(&self) -> Option<AbortReason> {
        self.launches.iter().find_map(|l| l.abort)
    }

    /// True when every launch completed.
    pub fn completed(&self) -> bool {
        self.launches.iter().all(|l| l.completed())
    }

    /// Fraction of runtime checks eliminated by static analysis, in
    /// `[0, 1]` (the right-hand axis of paper Figs. 17 and 19).
    pub fn check_reduction(&self) -> f64 {
        let performed: u64 = self.launches.iter().map(|l| l.checks_performed).sum();
        let skipped: u64 = self.launches.iter().map(|l| l.checks_skipped).sum();
        let total = performed + skipped;
        if total == 0 {
            0.0
        } else {
            skipped as f64 / total as f64
        }
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run: {} cycles, {} launches",
            self.cycles,
            self.launches.len()
        )?;
        for l in &self.launches {
            writeln!(
                f,
                "  {} (id {}): {} cycles, {} instrs, {} mem, checks {}/{} skipped{}",
                l.kernel,
                l.kernel_id,
                l.cycles(),
                l.instructions,
                l.mem_instructions,
                l.checks_skipped,
                l.checks_performed + l.checks_skipped,
                match l.abort {
                    Some(a) => format!(" [{a}]"),
                    None => String::new(),
                }
            )?;
        }
        writeln!(f, "  L1D {} | L2 {}", self.l1d, self.l2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_reduction_fraction() {
        let mut r = RunReport::default();
        r.launches.push(LaunchReport {
            checks_performed: 25,
            checks_skipped: 75,
            ..LaunchReport::default()
        });
        assert!((r.check_reduction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_run_has_zero_reduction() {
        assert_eq!(RunReport::default().check_reduction(), 0.0);
    }

    #[test]
    fn abort_propagates() {
        let mut r = RunReport::default();
        r.launches.push(LaunchReport::default());
        assert!(r.completed());
        r.launches.push(LaunchReport {
            abort: Some(AbortReason::BoundsViolation),
            ..LaunchReport::default()
        });
        assert!(!r.completed());
        assert_eq!(r.abort(), Some(AbortReason::BoundsViolation));
    }
}
