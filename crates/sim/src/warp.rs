//! Warp (sub-workgroup) state: registers, the SIMT reconvergence stack, and
//! functional execution of scalar/control instructions.
//!
//! Divergence follows the classic immediate-post-dominator scheme (§2.1):
//! a divergent branch pushes both sides onto the stack with the branch
//! block's ipdom as reconvergence point; reaching the reconvergence block
//! pops one side and resumes the other, and the merged continuation runs
//! once both sides arrive.

use gpushield_isa::{
    BinOp, BlockId, CmpOp, Instr, Kernel, Operand, ReconvergenceTable, Special, UnOp, VReg,
};

/// Per-launch uniform values needed to evaluate operands.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExecCtx<'a> {
    pub args: &'a [u64],
    pub local_bases: &'a [u64],
    pub block_dim: u64,
    pub grid_dim: u64,
}

#[derive(Debug, Clone)]
pub(crate) struct StackEntry {
    /// Next instruction; `None` means "finished, pop me".
    pub pc: Option<(BlockId, usize)>,
    pub mask: u64,
    /// Reconvergence block: arriving here pops this entry.
    pub rpc: Option<BlockId>,
}

/// What `exec_simple` asks the core to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SimpleOutcome {
    /// Instruction fully handled; pc already advanced.
    Done,
    /// Warp retired (all stack entries popped).
    Retired,
    /// A memory / barrier / heap instruction: the core must handle it (pc
    /// has *not* been advanced).
    NeedsCore,
}

#[derive(Debug, Clone)]
pub(crate) struct Warp {
    pub launch_idx: usize,
    pub wg: u64,
    pub warp_in_wg: usize,
    pub width: usize,
    pub regs: Vec<u64>,
    pub stack: Vec<StackEntry>,
    pub ready_at: u64,
    pub at_barrier: bool,
    /// Blocked forever on an exhausted device-heap allocator (only set
    /// under `GpuConfig::malloc_blocks_on_exhaustion`); the deadlock
    /// detector reports these as `HeapDeadlock` rather than spinning.
    pub blocked: bool,
    pub done: bool,
    /// Monotonic dispatch sequence for greedy-then-oldest scheduling.
    pub age: u64,
}

impl Warp {
    pub fn new(
        launch_idx: usize,
        wg: u64,
        warp_in_wg: usize,
        width: usize,
        lanes: usize,
        num_regs: u16,
        age: u64,
    ) -> Self {
        let exist_mask = if lanes >= 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        Warp {
            launch_idx,
            wg,
            warp_in_wg,
            width,
            regs: vec![0; usize::from(num_regs) * width],
            stack: vec![StackEntry {
                pc: Some((BlockId(0), 0)),
                mask: exist_mask,
                rpc: None,
            }],
            ready_at: 0,
            at_barrier: false,
            blocked: false,
            done: false,
            age,
        }
    }

    pub fn active_mask(&self) -> u64 {
        self.stack.last().map(|e| e.mask).unwrap_or(0)
    }

    pub fn pc(&self) -> Option<(BlockId, usize)> {
        self.stack.last().and_then(|e| e.pc)
    }

    pub fn lane_active(&self, lane: usize) -> bool {
        self.active_mask() & (1u64 << lane) != 0
    }

    fn reg(&self, r: VReg, lane: usize) -> u64 {
        self.regs[usize::from(r.0) * self.width + lane]
    }

    pub fn set_reg(&mut self, r: VReg, lane: usize, v: u64) {
        self.regs[usize::from(r.0) * self.width + lane] = v;
    }

    /// Global thread id components for `lane`.
    fn special(&self, s: Special, lane: usize, ctx: &ExecCtx<'_>) -> u64 {
        match s {
            Special::ThreadId => (self.warp_in_wg * self.width + lane) as u64,
            Special::BlockId => self.wg,
            Special::BlockDim => ctx.block_dim,
            Special::GridDim => ctx.grid_dim,
            Special::LaneId => lane as u64,
        }
    }

    pub fn eval(&self, op: Operand, lane: usize, ctx: &ExecCtx<'_>) -> u64 {
        match op {
            Operand::Reg(r) => self.reg(r, lane),
            Operand::Imm(i) => i as u64,
            Operand::Param(p) => ctx.args[usize::from(p)],
            Operand::LocalBase(v) => ctx.local_bases[usize::from(v)],
            Operand::Special(s) => self.special(s, lane, ctx),
        }
    }

    /// Advances the program counter past a non-terminator instruction.
    pub fn advance_pc(&mut self) {
        if let Some(e) = self.stack.last_mut() {
            if let Some((b, i)) = e.pc {
                e.pc = Some((b, i + 1));
            }
        }
    }

    /// Transfers control to `target`, honouring reconvergence pops.
    fn enter_block(&mut self, target: BlockId) {
        let pops = self
            .stack
            .last()
            .map(|e| e.rpc == Some(target))
            .unwrap_or(false);
        if pops {
            self.stack.pop();
            self.drain_finished();
        } else if let Some(e) = self.stack.last_mut() {
            e.pc = Some((target, 0));
        }
    }

    /// Pops continuation entries whose pc is `None` (exit continuations).
    fn drain_finished(&mut self) {
        while matches!(self.stack.last(), Some(e) if e.pc.is_none()) {
            self.stack.pop();
        }
        if self.stack.is_empty() {
            self.done = true;
        }
    }

    /// Executes one scalar/control instruction functionally. Returns
    /// [`SimpleOutcome::NeedsCore`] for memory, barrier, and heap
    /// instructions, which the core handles with timing.
    pub fn exec_simple(
        &mut self,
        kernel: &Kernel,
        recon: &ReconvergenceTable,
        ctx: &ExecCtx<'_>,
    ) -> SimpleOutcome {
        let (block, idx) = match self.pc() {
            Some(pc) => pc,
            None => {
                self.drain_finished();
                return SimpleOutcome::Retired;
            }
        };
        let instr = kernel.block(block).instrs()[idx];
        let mask = self.active_mask();
        match instr {
            Instr::Mov { dst, src } => {
                for lane in 0..self.width {
                    if mask & (1 << lane) != 0 {
                        let v = self.eval(src, lane, ctx);
                        self.set_reg(dst, lane, v);
                    }
                }
                self.advance_pc();
                SimpleOutcome::Done
            }
            Instr::Un { op, dst, a } => {
                for lane in 0..self.width {
                    if mask & (1 << lane) != 0 {
                        let x = self.eval(a, lane, ctx);
                        self.set_reg(dst, lane, eval_un(op, x));
                    }
                }
                self.advance_pc();
                SimpleOutcome::Done
            }
            Instr::Bin { op, dst, a, b } => {
                for lane in 0..self.width {
                    if mask & (1 << lane) != 0 {
                        let x = self.eval(a, lane, ctx);
                        let y = self.eval(b, lane, ctx);
                        self.set_reg(dst, lane, eval_bin(op, x, y));
                    }
                }
                self.advance_pc();
                SimpleOutcome::Done
            }
            Instr::Cmp { op, dst, a, b } => {
                for lane in 0..self.width {
                    if mask & (1 << lane) != 0 {
                        let x = self.eval(a, lane, ctx);
                        let y = self.eval(b, lane, ctx);
                        self.set_reg(dst, lane, u64::from(eval_cmp(op, x, y)));
                    }
                }
                self.advance_pc();
                SimpleOutcome::Done
            }
            Instr::Sel { dst, cond, a, b } => {
                for lane in 0..self.width {
                    if mask & (1 << lane) != 0 {
                        let c = self.eval(cond, lane, ctx);
                        let v = if c != 0 {
                            self.eval(a, lane, ctx)
                        } else {
                            self.eval(b, lane, ctx)
                        };
                        self.set_reg(dst, lane, v);
                    }
                }
                self.advance_pc();
                SimpleOutcome::Done
            }
            Instr::Jmp { target } => {
                self.enter_block(target);
                if self.done {
                    SimpleOutcome::Retired
                } else {
                    SimpleOutcome::Done
                }
            }
            Instr::Bra {
                cond,
                taken,
                not_taken,
            } => {
                let mut t_mask = 0u64;
                for lane in 0..self.width {
                    if mask & (1 << lane) != 0 && self.eval(cond, lane, ctx) != 0 {
                        t_mask |= 1 << lane;
                    }
                }
                let nt_mask = mask & !t_mask;
                if nt_mask == 0 {
                    self.enter_block(taken);
                } else if t_mask == 0 {
                    self.enter_block(not_taken);
                } else {
                    // Divergence: convert the current entry into the merged
                    // continuation at the reconvergence point, then push the
                    // not-taken and taken sides. A side whose entry block
                    // *is* the reconvergence point has already reconverged
                    // and is not pushed (its lanes are covered by the
                    // continuation's mask).
                    let rpc = recon.reconvergence_point(block);
                    {
                        let top = self.stack.last_mut().expect("running warp has stack");
                        top.pc = rpc.map(|b| (b, 0));
                    }
                    if Some(not_taken) != rpc {
                        self.stack.push(StackEntry {
                            pc: Some((not_taken, 0)),
                            mask: nt_mask,
                            rpc,
                        });
                    }
                    if Some(taken) != rpc {
                        self.stack.push(StackEntry {
                            pc: Some((taken, 0)),
                            mask: t_mask,
                            rpc,
                        });
                    }
                    self.drain_finished();
                }
                if self.done {
                    SimpleOutcome::Retired
                } else {
                    SimpleOutcome::Done
                }
            }
            Instr::Ret => {
                self.stack.pop();
                self.drain_finished();
                if self.stack.is_empty() {
                    self.done = true;
                    SimpleOutcome::Retired
                } else {
                    SimpleOutcome::Done
                }
            }
            Instr::Ld { .. }
            | Instr::St { .. }
            | Instr::AtomAdd { .. }
            | Instr::Bar
            | Instr::Malloc { .. }
            | Instr::Free { .. } => SimpleOutcome::NeedsCore,
        }
    }
}

pub(crate) fn eval_un(op: UnOp, x: u64) -> u64 {
    match op {
        UnOp::Not => !x,
        UnOp::Neg => (x as i64).wrapping_neg() as u64,
        UnOp::Abs => (x as i64).wrapping_abs() as u64,
    }
}

pub(crate) fn eval_bin(op: BinOp, x: u64, y: u64) -> u64 {
    let (sx, sy) = (x as i64, y as i64);
    match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if sy == 0 {
                0
            } else {
                sx.wrapping_div(sy) as u64
            }
        }
        BinOp::Rem => {
            if sy == 0 {
                0
            } else {
                sx.wrapping_rem(sy) as u64
            }
        }
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => x << (y & 63),
        BinOp::Shr => x >> (y & 63),
        BinOp::Min => sx.min(sy) as u64,
        BinOp::Max => sx.max(sy) as u64,
    }
}

pub(crate) fn eval_cmp(op: CmpOp, x: u64, y: u64) -> bool {
    let (sx, sy) = (x as i64, y as i64);
    match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => sx < sy,
        CmpOp::Le => sx <= sy,
        CmpOp::Gt => sx > sy,
        CmpOp::Ge => sx >= sy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpushield_isa::KernelBuilder;

    fn ctx<'a>(args: &'a [u64]) -> ExecCtx<'a> {
        ExecCtx {
            args,
            local_bases: &[],
            block_dim: 8,
            grid_dim: 2,
        }
    }

    fn run_warp(kernel: &Kernel, width: usize, args: &[u64]) -> Warp {
        let recon = ReconvergenceTable::build(kernel);
        let mut w = Warp::new(0, 0, 0, width, width, kernel.num_regs(), 0);
        let c = ctx(args);
        let mut fuel = 100_000;
        while !w.done {
            match w.exec_simple(kernel, &recon, &c) {
                SimpleOutcome::Done => {}
                SimpleOutcome::Retired => break,
                SimpleOutcome::NeedsCore => panic!("test kernels must be ALU-only"),
            }
            fuel -= 1;
            assert!(fuel > 0, "kernel did not terminate");
        }
        w
    }

    #[test]
    fn divergent_if_else_merges_lane_results() {
        // r = tid < 2 ? 100 : 200, via real divergence.
        let mut b = KernelBuilder::new("div");
        let t = b.mov(b.thread_id());
        let c = b.lt(t, Operand::Imm(2));
        let out = b.mov(Operand::Imm(0));
        b.if_then_else(
            c,
            |b| b.assign(out, Operand::Imm(100)),
            |b| b.assign(out, Operand::Imm(200)),
        );
        // Post-join arithmetic executes with the full mask again.
        let fin = b.add(out, Operand::Imm(5));
        b.ret();
        let k = b.finish().unwrap();
        let w = run_warp(&k, 4, &[]);
        let vals: Vec<u64> = (0..4).map(|l| w.reg(fin, l)).collect();
        assert_eq!(vals, vec![105, 105, 205, 205]);
    }

    #[test]
    fn data_dependent_loop_trip_counts() {
        // acc = sum over i in 0..tid of 1 → acc == tid, divergent loop exit.
        let mut b = KernelBuilder::new("loop");
        let t = b.mov(b.thread_id());
        let acc = b.mov(Operand::Imm(0));
        b.for_loop(Operand::Imm(0), t, 1, |b, _i| {
            let n = b.add(acc, Operand::Imm(1));
            b.assign(acc, n);
        });
        let fin = b.mov(acc);
        b.ret();
        let k = b.finish().unwrap();
        let w = run_warp(&k, 4, &[]);
        let vals: Vec<u64> = (0..4).map(|l| w.reg(fin, l)).collect();
        assert_eq!(vals, vec![0, 1, 2, 3]);
    }

    #[test]
    fn nested_divergence() {
        // out = (tid<2) ? ((tid<1) ? 1 : 2) : 3
        let mut b = KernelBuilder::new("nest");
        let t = b.mov(b.thread_id());
        let out = b.mov(Operand::Imm(0));
        let outer = b.lt(t, Operand::Imm(2));
        b.if_then_else(
            outer,
            |b| {
                let inner = b.lt(t, Operand::Imm(1));
                b.if_then_else(
                    inner,
                    |b| b.assign(out, Operand::Imm(1)),
                    |b| b.assign(out, Operand::Imm(2)),
                );
            },
            |b| b.assign(out, Operand::Imm(3)),
        );
        let fin = b.mov(out);
        b.ret();
        let k = b.finish().unwrap();
        let w = run_warp(&k, 4, &[]);
        let vals: Vec<u64> = (0..4).map(|l| w.reg(fin, l)).collect();
        assert_eq!(vals, vec![1, 2, 3, 3]);
    }

    #[test]
    fn partial_warp_masks_missing_lanes() {
        let mut b = KernelBuilder::new("partial");
        let t = b.mov(b.thread_id());
        let _ = b.add(t, Operand::Imm(1));
        b.ret();
        let k = b.finish().unwrap();
        let mut w = Warp::new(0, 0, 0, 4, 2, k.num_regs(), 0);
        assert_eq!(w.active_mask(), 0b0011);
        let recon = ReconvergenceTable::build(&k);
        let c = ctx(&[]);
        while !w.done {
            if w.exec_simple(&k, &recon, &c) == SimpleOutcome::Retired {
                break;
            }
        }
        assert!(w.done);
    }

    #[test]
    fn select_is_predication_not_divergence() {
        let mut b = KernelBuilder::new("sel");
        let t = b.mov(b.thread_id());
        let c = b.lt(t, Operand::Imm(2));
        let v = b.sel(c, Operand::Imm(7), Operand::Imm(9));
        b.ret();
        let k = b.finish().unwrap();
        let w = run_warp(&k, 4, &[]);
        let vals: Vec<u64> = (0..4).map(|l| w.reg(v, l)).collect();
        assert_eq!(vals, vec![7, 7, 9, 9]);
    }
}
