//! GPU hardware configurations (paper Table 5).

use gpushield_mem::{DramConfig, MemTimings};

/// Full hardware configuration of a simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Human-readable configuration name.
    pub name: String,
    /// Number of shader cores (SMs / EU clusters).
    pub num_cores: usize,
    /// Maximum resident threads per core.
    pub threads_per_core: usize,
    /// SIMT width (threads per sub-workgroup).
    pub warp_width: usize,
    /// Register-file size per core, in 64-bit registers; bounds occupancy
    /// together with `threads_per_core`.
    pub regs_per_core: usize,
    /// Shared-memory bytes per core.
    pub shared_per_core: u64,
    /// Per-core L1 Dcache size in bytes.
    pub l1_bytes: u64,
    /// Per-core L1 Dcache associativity.
    pub l1_ways: usize,
    /// Per-core L1 TLB entries (fully associative).
    pub l1_tlb_entries: usize,
    /// Shared L2 cache size in bytes (16-way).
    pub l2_bytes: u64,
    /// Shared L2 TLB entries (32-way).
    pub l2_tlb_entries: usize,
    /// DRAM configuration.
    pub dram: DramConfig,
    /// Memory-system latencies.
    pub timings: MemTimings,
    /// ALU instruction latency in cycles.
    pub alu_latency: u64,
    /// Instructions a core may issue per cycle.
    pub issue_width: usize,
    /// Serialized cost of one device-side heap `malloc`/`free` (the global
    /// allocator lock round-trip; §5.2.1 footnote 2).
    pub heap_alloc_cycles: u64,
    /// Hard cycle budget (watchdog): the run fails with
    /// `RunError::CycleBudgetExceeded` once the cycle counter reaches this
    /// value, so injected or programmed hangs terminate deterministically.
    /// `u64::MAX` (the presets' default) disables the watchdog.
    pub max_cycles: u64,
    /// When true, a device-heap `malloc` that cannot be satisfied blocks
    /// the requesting warp until memory is freed — and surfaces as
    /// `RunError::HeapDeadlock` when nothing ever frees. When false
    /// (default, matching CUDA device malloc) the allocation returns NULL.
    pub malloc_blocks_on_exhaustion: bool,
    /// Worker threads the simulator's cycle-quantum engine shards SIMT
    /// cores across (clamped to `[1, num_cores]`). Simulation results are
    /// bit-identical for every value — parallelism changes wall-clock
    /// time, never simulated behaviour — so this is a host-side tuning
    /// knob, not part of the modelled hardware.
    pub sim_threads: usize,
}

impl GpuConfig {
    /// Nvidia-like configuration from Table 5: 16 SMs, 1024 threads per SM,
    /// 256 KB register file per SM, 16 KB 4-way L1, 64-entry L1 TLB, 2 MB
    /// 16-way shared L2, 1024-entry 32-way shared L2 TLB, 16 DRAM channels.
    pub fn nvidia() -> Self {
        GpuConfig {
            name: "nvidia-table5".to_string(),
            num_cores: 16,
            threads_per_core: 1024,
            warp_width: 32,
            regs_per_core: 256 * 1024 / 8,
            shared_per_core: 96 * 1024,
            l1_bytes: 16 * 1024,
            l1_ways: 4,
            l1_tlb_entries: 64,
            l2_bytes: 2 * 1024 * 1024,
            l2_tlb_entries: 1024,
            dram: DramConfig::default(),
            timings: MemTimings::default(),
            alu_latency: 4,
            issue_width: 1,
            heap_alloc_cycles: 12,
            max_cycles: u64::MAX,
            malloc_blocks_on_exhaustion: false,
            sim_threads: 1,
        }
    }

    /// Intel-like integrated-GPU configuration from Table 5: 24 cores with
    /// 7 hardware threads each and SIMD8 vectorisation. A simulator "core"
    /// models a subslice (8 EUs x 7 threads x SIMD8 = 448 resident
    /// workitems), which is the granularity workgroups are scheduled to.
    pub fn intel() -> Self {
        GpuConfig {
            name: "intel-table5".to_string(),
            num_cores: 24,
            threads_per_core: 8 * 7 * 8,
            warp_width: 8,
            regs_per_core: 8 * 28 * 1024 / 8,
            shared_per_core: 64 * 1024,
            l1_bytes: 32 * 1024,
            l1_ways: 4,
            l1_tlb_entries: 64,
            l2_bytes: 2 * 1024 * 1024,
            l2_tlb_entries: 1024,
            dram: DramConfig::default(),
            timings: MemTimings::default(),
            alu_latency: 4,
            issue_width: 1,
            heap_alloc_cycles: 12,
            max_cycles: u64::MAX,
            malloc_blocks_on_exhaustion: false,
            sim_threads: 1,
        }
    }

    /// A tiny configuration for unit tests: 2 cores, 4-wide warps, small
    /// caches. Not a paper configuration.
    pub fn test_tiny() -> Self {
        GpuConfig {
            name: "test-tiny".to_string(),
            num_cores: 2,
            threads_per_core: 64,
            warp_width: 4,
            regs_per_core: 4096,
            shared_per_core: 4096,
            l1_bytes: 2048,
            l1_ways: 2,
            l1_tlb_entries: 8,
            l2_bytes: 64 * 1024,
            l2_tlb_entries: 64,
            dram: DramConfig::default(),
            timings: MemTimings::default(),
            alu_latency: 4,
            issue_width: 1,
            heap_alloc_cycles: 50,
            max_cycles: u64::MAX,
            malloc_blocks_on_exhaustion: false,
            sim_threads: 1,
        }
    }

    /// Maximum resident warps per core by the thread limit alone.
    pub fn max_warps_per_core(&self) -> usize {
        self.threads_per_core / self.warp_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvidia_preset_matches_table5() {
        let c = GpuConfig::nvidia();
        assert_eq!(c.num_cores, 16);
        assert_eq!(c.threads_per_core, 1024);
        assert_eq!(c.max_warps_per_core(), 32);
        assert_eq!(c.l1_bytes, 16 * 1024);
        assert_eq!(c.l2_bytes, 2 * 1024 * 1024);
        assert_eq!(c.dram.channels, 16);
    }

    #[test]
    fn intel_preset_matches_table5() {
        let c = GpuConfig::intel();
        assert_eq!(c.num_cores, 24);
        assert_eq!(c.warp_width, 8);
        assert_eq!(c.max_warps_per_core(), 56); // 8 EUs x 7 HW threads
        assert_eq!(c.l1_bytes, 32 * 1024);
    }
}
