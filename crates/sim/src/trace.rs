//! Execution tracing: a structured event stream for debugging kernels and
//! inspecting the timing model (dispatch, memory transactions, barriers,
//! retirement, aborts).
//!
//! Tracing is opt-in per run and bounded: once `capacity` events have been
//! recorded the trace marks itself truncated and stops growing, so tracing
//! a long simulation cannot exhaust memory.

use gpushield_isa::{BlockId, MemSpace};
use gpushield_telemetry::chrome::ChromeTrace;
use std::fmt;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A workgroup was placed on a core.
    Dispatch {
        /// Workgroup index.
        wg: u64,
    },
    /// A warp executed a memory instruction.
    Mem {
        /// Memory space.
        space: MemSpace,
        /// Store or load/atomic-read side.
        is_store: bool,
        /// Coalesced transactions produced.
        transactions: u8,
        /// Visible bounds-check stall charged.
        stall: u8,
    },
    /// A warp arrived at a barrier.
    Barrier,
    /// A warp retired.
    Retire,
    /// The launch aborted (fault or bounds violation).
    Abort,
    /// Sentinel: the trace hit its capacity here and dropped every later
    /// event. Always the final event of a truncated trace, so exports can
    /// render the cut point.
    Truncated,
}

/// One trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation cycle.
    pub cycle: u64,
    /// Core index.
    pub core: usize,
    /// Launch index within the run.
    pub launch: usize,
    /// Workgroup index.
    pub wg: u64,
    /// Warp index within the workgroup.
    pub warp: usize,
    /// Instruction site, when applicable.
    pub site: Option<(BlockId, usize)>,
    /// Event payload.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>8}] core {:>2} wg {:>4} warp {:>2} ",
            self.cycle, self.core, self.wg, self.warp
        )?;
        match self.kind {
            TraceKind::Dispatch { wg } => write!(f, "dispatch wg {wg}"),
            TraceKind::Mem {
                space,
                is_store,
                transactions,
                stall,
            } => write!(
                f,
                "{} {space} ({transactions} tx, stall {stall}){}",
                if is_store { "st" } else { "ld" },
                match self.site {
                    Some((b, i)) => format!(" @{b}:{i}"),
                    None => String::new(),
                }
            ),
            TraceKind::Barrier => f.write_str("barrier"),
            TraceKind::Retire => f.write_str("retire"),
            TraceKind::Abort => f.write_str("ABORT"),
            TraceKind::Truncated => f.write_str("TRACE TRUNCATED"),
        }
    }
}

/// A bounded event recorder.
///
/// At most `capacity` payload events are stored; the first overflowing
/// push appends one [`TraceKind::Truncated`] sentinel (so a truncated
/// trace holds `capacity + 1` events, the sentinel always last) and every
/// later push only increments the dropped-event count.
#[derive(Debug)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    truncated: bool,
    dropped: u64,
}

impl Trace {
    /// Creates a trace holding at most `capacity` payload events.
    pub fn new(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            truncated: false,
            dropped: 0,
        }
    }

    pub(crate) fn push(&mut self, e: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(e);
        } else {
            if !self.truncated {
                self.truncated = true;
                self.events.push(TraceEvent {
                    kind: TraceKind::Truncated,
                    site: None,
                    ..e
                });
            }
            self.dropped += 1;
        }
    }

    /// Recorded events, in simulation order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// True when events were dropped after hitting capacity.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Number of events dropped after the capacity bound was hit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the whole trace, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        if self.truncated {
            out.push_str(&format!("... (truncated, {} dropped)\n", self.dropped));
        }
        out
    }

    /// Converts the event stream to Chrome Trace Event Format, mapping
    /// cores to `pid` and `(wg, warp)` to `tid` so the trace viewer
    /// groups lanes per-SM, per-warp. Memory instructions become complete
    /// (`X`) slices whose duration is `transactions + stall` cycles;
    /// everything else becomes an instant event. The truncation sentinel,
    /// when present, renders as an instant named `trace-truncated`.
    pub fn to_chrome(&self) -> ChromeTrace {
        let mut chrome = ChromeTrace::new();
        for e in &self.events {
            let pid = e.core as u32;
            let tid = ((e.wg as u32) << 6) | (e.warp as u32 & 0x3f);
            match e.kind {
                TraceKind::Dispatch { wg } => {
                    chrome.push_instant("dispatch", "sched", e.cycle, pid, tid);
                    chrome.arg("wg", &wg.to_string());
                }
                TraceKind::Mem {
                    space,
                    is_store,
                    transactions,
                    stall,
                } => {
                    let name = format!("{} {space}", if is_store { "st" } else { "ld" });
                    let dur = transactions as u64 + stall as u64;
                    chrome.push_complete(&name, "mem", e.cycle, dur, pid, tid);
                    chrome.arg("transactions", &transactions.to_string());
                    chrome.arg("stall", &stall.to_string());
                    if let Some((b, i)) = e.site {
                        chrome.arg("site", &format!("{b}:{i}"));
                    }
                }
                TraceKind::Barrier => chrome.push_instant("barrier", "sched", e.cycle, pid, tid),
                TraceKind::Retire => chrome.push_instant("retire", "sched", e.cycle, pid, tid),
                TraceKind::Abort => chrome.push_instant("abort", "sched", e.cycle, pid, tid),
                TraceKind::Truncated => {
                    chrome.push_instant("trace-truncated", "trace", e.cycle, pid, tid);
                    chrome.arg("dropped", &self.dropped.to_string());
                }
            }
        }
        chrome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            core: 0,
            launch: 0,
            wg: 0,
            warp: 0,
            site: None,
            kind: TraceKind::Barrier,
        }
    }

    #[test]
    fn capacity_bound_is_enforced() {
        let mut t = Trace::new(2);
        for i in 0..5 {
            t.push(ev(i));
        }
        // 2 payload events + 1 truncation sentinel; 3 drops counted.
        assert_eq!(t.events().len(), 3);
        assert!(t.truncated());
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.events()[2].kind, TraceKind::Truncated);
    }

    #[test]
    fn capacity_holds_under_event_storm() {
        // A storm three orders of magnitude over capacity: the bound, the
        // flag, the drop count and the sentinel position must all hold.
        let cap = 64;
        let mut t = Trace::new(cap);
        let storm = 100_000u64;
        for i in 0..storm {
            t.push(ev(i));
        }
        assert_eq!(t.events().len(), cap + 1);
        assert!(t.truncated());
        assert_eq!(t.dropped(), storm - cap as u64);
        let last = t.events().last().copied();
        assert!(matches!(
            last,
            Some(TraceEvent {
                kind: TraceKind::Truncated,
                ..
            })
        ));
        // The sentinel timestamp is the first dropped event's cycle.
        assert_eq!(t.events()[cap].cycle, cap as u64);
        // Payload events before the sentinel are untouched.
        assert!(t.events()[..cap]
            .iter()
            .all(|e| e.kind == TraceKind::Barrier));
        let r = t.render();
        assert!(r.contains(&format!("(truncated, {} dropped)", storm - cap as u64)));
        assert!(r.contains("TRACE TRUNCATED"));
    }

    #[test]
    fn untruncated_trace_has_no_sentinel() {
        let mut t = Trace::new(4);
        t.push(ev(0));
        t.push(ev(1));
        assert!(!t.truncated());
        assert_eq!(t.dropped(), 0);
        assert!(t.events().iter().all(|e| e.kind != TraceKind::Truncated));
        assert!(!t.render().contains("truncated"));
    }

    #[test]
    fn chrome_export_renders_cut_point() {
        let mut t = Trace::new(1);
        for i in 0..3 {
            t.push(ev(i));
        }
        let chrome = t.to_chrome();
        assert_eq!(chrome.len(), 2);
        assert_eq!(chrome.events[1].name, "trace-truncated");
        assert!(chrome.render().contains("\"dropped\": \"2\""));
    }

    #[test]
    fn render_is_line_per_event() {
        let mut t = Trace::new(8);
        t.push(TraceEvent {
            cycle: 42,
            core: 1,
            launch: 0,
            wg: 3,
            warp: 2,
            site: Some((BlockId(1), 4)),
            kind: TraceKind::Mem {
                space: MemSpace::Global,
                is_store: true,
                transactions: 2,
                stall: 1,
            },
        });
        let s = t.render();
        assert!(s.contains("st global (2 tx, stall 1) @bb1:4"), "{s}");
        assert_eq!(s.lines().count(), 1);
    }
}
