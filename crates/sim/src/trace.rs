//! Execution tracing: a structured event stream for debugging kernels and
//! inspecting the timing model (dispatch, memory transactions, barriers,
//! retirement, aborts).
//!
//! Tracing is opt-in per run and bounded: once `capacity` events have been
//! recorded the trace marks itself truncated and stops growing, so tracing
//! a long simulation cannot exhaust memory.

use gpushield_isa::{BlockId, MemSpace};
use std::fmt;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A workgroup was placed on a core.
    Dispatch {
        /// Workgroup index.
        wg: u64,
    },
    /// A warp executed a memory instruction.
    Mem {
        /// Memory space.
        space: MemSpace,
        /// Store or load/atomic-read side.
        is_store: bool,
        /// Coalesced transactions produced.
        transactions: u8,
        /// Visible bounds-check stall charged.
        stall: u8,
    },
    /// A warp arrived at a barrier.
    Barrier,
    /// A warp retired.
    Retire,
    /// The launch aborted (fault or bounds violation).
    Abort,
}

/// One trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation cycle.
    pub cycle: u64,
    /// Core index.
    pub core: usize,
    /// Launch index within the run.
    pub launch: usize,
    /// Workgroup index.
    pub wg: u64,
    /// Warp index within the workgroup.
    pub warp: usize,
    /// Instruction site, when applicable.
    pub site: Option<(BlockId, usize)>,
    /// Event payload.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>8}] core {:>2} wg {:>4} warp {:>2} ",
            self.cycle, self.core, self.wg, self.warp
        )?;
        match self.kind {
            TraceKind::Dispatch { wg } => write!(f, "dispatch wg {wg}"),
            TraceKind::Mem {
                space,
                is_store,
                transactions,
                stall,
            } => write!(
                f,
                "{} {space} ({transactions} tx, stall {stall}){}",
                if is_store { "st" } else { "ld" },
                match self.site {
                    Some((b, i)) => format!(" @{b}:{i}"),
                    None => String::new(),
                }
            ),
            TraceKind::Barrier => f.write_str("barrier"),
            TraceKind::Retire => f.write_str("retire"),
            TraceKind::Abort => f.write_str("ABORT"),
        }
    }
}

/// A bounded event recorder.
#[derive(Debug)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    truncated: bool,
}

impl Trace {
    /// Creates a trace holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            truncated: false,
        }
    }

    pub(crate) fn push(&mut self, e: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(e);
        } else {
            self.truncated = true;
        }
    }

    /// Recorded events, in simulation order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// True when events were dropped after hitting capacity.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Renders the whole trace, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        if self.truncated {
            out.push_str("... (truncated)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_bound_is_enforced() {
        let mut t = Trace::new(2);
        for i in 0..5 {
            t.push(TraceEvent {
                cycle: i,
                core: 0,
                launch: 0,
                wg: 0,
                warp: 0,
                site: None,
                kind: TraceKind::Barrier,
            });
        }
        assert_eq!(t.events().len(), 2);
        assert!(t.truncated());
    }

    #[test]
    fn render_is_line_per_event() {
        let mut t = Trace::new(8);
        t.push(TraceEvent {
            cycle: 42,
            core: 1,
            launch: 0,
            wg: 3,
            warp: 2,
            site: Some((BlockId(1), 4)),
            kind: TraceKind::Mem {
                space: MemSpace::Global,
                is_store: true,
                transactions: 2,
                stall: 1,
            },
        });
        let s = t.render();
        assert!(s.contains("st global (2 tx, stall 1) @bb1:4"), "{s}");
        assert_eq!(s.lines().count(), 1);
    }
}
