//! The memory-guard hook: how bounds-checking hardware (GPUShield's BCU) or
//! an instrumentation model observes warp-level memory accesses.
//!
//! The simulator calls [`MemGuard::check`] once per executed memory
//! instruction per warp — matching the paper's workgroup/warp-level
//! checking (§5.5.1): the BCU sees the *gathered min/max address range* of
//! the whole sub-workgroup, not per-thread addresses.

use crate::launch::SiteCheck;
use gpushield_isa::{BlockId, MemSpace, TaggedPtr};
use gpushield_mem::VirtualMemorySpace;

/// One warp-level memory access as seen by the BCU, after address
/// generation and coalescing.
#[derive(Debug, Clone, Copy)]
pub struct MemAccess {
    /// Core executing the access.
    pub core: usize,
    /// Driver-assigned kernel ID.
    pub kernel_id: u16,
    /// True for stores.
    pub is_store: bool,
    /// Memory space addressed.
    pub space: MemSpace,
    /// The (tagged) pointer value the AGU saw — class and info fields drive
    /// the check (Fig. 7).
    pub pointer: TaggedPtr,
    /// Instruction site `(block, index)`.
    pub site: (BlockId, usize),
    /// Gathered warp address range: minimum address and maximum *exclusive
    /// end* across active lanes.
    pub range: (u64, u64),
    /// Check decision the compiler recorded for this site.
    pub site_check: SiteCheck,
    /// Number of coalesced transactions this access produced.
    pub transactions: usize,
    /// Active lanes participating in the access (a per-thread checking
    /// scheme would perform this many checks instead of one).
    pub active_lanes: usize,
    /// True when every transaction hit the L1 Dcache (drives the Fig. 12
    /// stall-visibility rule).
    pub l1d_all_hit: bool,
}

/// Outcome of a bounds check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardVerdict {
    /// Access is in bounds (or unchecked); proceed.
    Allow,
    /// Violation with precise-exception support: abort the kernel (§5.5.2).
    Fault,
    /// Violation without precise exceptions: log, return zero for loads,
    /// drop stores silently (§5.5.2).
    Squash,
}

impl GuardVerdict {
    /// Stable integer code for flight-recorder payloads.
    pub fn code(&self) -> u8 {
        match self {
            GuardVerdict::Allow => 0,
            GuardVerdict::Fault => 1,
            GuardVerdict::Squash => 2,
        }
    }

    /// Inverse of [`GuardVerdict::code`].
    pub fn from_code(code: u8) -> Option<GuardVerdict> {
        Some(match code {
            0 => GuardVerdict::Allow,
            1 => GuardVerdict::Fault,
            2 => GuardVerdict::Squash,
            _ => return None,
        })
    }
}

/// Which microarchitectural path resolved a bounds check — the paper's
/// Fig. 13/14 attribution axis. GPUShield's BCU reports where the region
/// bounds came from (L1 RCache, L2 RCache, or an RBT fetch from device
/// memory); software baselines report [`CheckPath::Software`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckPath {
    /// No bounds metadata consulted (unprotected pointer, or no guard).
    Unchecked,
    /// Region bounds found in the per-core L1 RCache.
    L1RCache,
    /// L1 RCache miss served by the shared L2 RCache.
    L2RCache,
    /// Both RCache levels missed; bounds fetched from the RBT in device
    /// memory.
    RbtFetch,
    /// Type 3 size-embedded pointer: bounds decoded from the pointer
    /// itself, no table lookup (§5.4).
    SizeEmbedded,
    /// Software instrumentation (baseline tools), fixed per-access cost.
    Software,
}

impl CheckPath {
    /// Short stable label used for telemetry metric names and tables.
    pub fn label(&self) -> &'static str {
        match self {
            CheckPath::Unchecked => "unchecked",
            CheckPath::L1RCache => "l1_rcache",
            CheckPath::L2RCache => "l2_rcache",
            CheckPath::RbtFetch => "rbt_fetch",
            CheckPath::SizeEmbedded => "size_embedded",
            CheckPath::Software => "software",
        }
    }

    /// Stable integer code for flight-recorder payloads.
    pub fn code(&self) -> u8 {
        match self {
            CheckPath::Unchecked => 0,
            CheckPath::L1RCache => 1,
            CheckPath::L2RCache => 2,
            CheckPath::RbtFetch => 3,
            CheckPath::SizeEmbedded => 4,
            CheckPath::Software => 5,
        }
    }

    /// Inverse of [`CheckPath::code`].
    pub fn from_code(code: u8) -> Option<CheckPath> {
        Some(match code {
            0 => CheckPath::Unchecked,
            1 => CheckPath::L1RCache,
            2 => CheckPath::L2RCache,
            3 => CheckPath::RbtFetch,
            4 => CheckPath::SizeEmbedded,
            5 => CheckPath::Software,
            _ => return None,
        })
    }
}

/// Result of a guard consultation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardCheck {
    /// The verdict.
    pub verdict: GuardVerdict,
    /// Extra LSU-pipeline cycles *visible* to this access after overlapping
    /// with the Dcache path (0 when hidden; Fig. 12).
    pub stall_cycles: u64,
    /// Which metadata path resolved the check (stall attribution).
    pub path: CheckPath,
}

impl GuardCheck {
    /// An allow with no visible stall — what unchecked accesses cost.
    pub fn allow_free() -> Self {
        GuardCheck {
            verdict: GuardVerdict::Allow,
            stall_cycles: 0,
            path: CheckPath::Unchecked,
        }
    }
}

/// A bounds-checking mechanism attached to the GPU's LSUs.
///
/// Implemented by GPUShield's BCU (crate `gpushield-core`) and by the
/// software-tool cost models (crate `gpushield-baselines`). The simulator
/// owns the guard mutably for a whole run; per-core state (RCaches) is the
/// implementation's business, keyed by [`MemAccess::core`].
///
/// `Send` is required because the cycle-quantum engine may consult a
/// non-forkable guard from its (single) worker context; all guards are
/// plain owned state, so the bound is free in practice.
pub trait MemGuard: Send {
    /// Observes one warp-level access and returns the verdict plus visible
    /// stall. `vm` grants read access to bounds metadata in device memory
    /// (the RBT) via the translation-bypass path.
    fn check(&mut self, access: &MemAccess, vm: &VirtualMemorySpace) -> GuardCheck;

    /// Called when a kernel terminates or a core context-switches; RCaches
    /// flush here (§5.5).
    fn on_kernel_end(&mut self, kernel_id: u16);

    /// Fault-injection hook: corrupt one resident piece of cached bounds
    /// metadata (an RCache entry) on `core`, the victim chosen
    /// deterministically from `entropy`. Returns whether anything was
    /// corrupted. The default implementation caches no metadata and
    /// reports `false`; GPUShield's BCU overrides it.
    fn inject_metadata_fault(&mut self, core: usize, entropy: u64) -> bool {
        let _ = (core, entropy);
        false
    }

    /// Human-readable mechanism name (for reports).
    fn name(&self) -> &str;

    /// Splits the guard into one independently-owned checker per SIMT
    /// core so the parallel engine can consult them from worker threads
    /// during a cycle quantum. Implementations whose per-core state is
    /// already disjoint (GPUShield's BCU: per-core RCaches) hand out
    /// shards borrowing `self`; the default reports `None`, which makes
    /// the engine fall back to single-worker execution with the whole
    /// guard (still quantum-based, still deterministic).
    ///
    /// Contract: while shards are alive the parent is unusable (they
    /// borrow it mutably); after they drop, [`MemGuard::merge_forked`]
    /// folds the per-core observations (statistics, violation logs) back
    /// into the parent in canonical core order.
    ///
    /// Must return `Some` exactly when [`MemGuard::supports_fork`] reports
    /// `true` for the same `num_cores`.
    fn fork_cores(&mut self, num_cores: usize) -> Option<Vec<Box<dyn CoreGuard + Send + '_>>> {
        let _ = num_cores;
        None
    }

    /// Whether [`MemGuard::fork_cores`] would hand out shards for
    /// `num_cores` cores. A separate probe (rather than matching on the
    /// fork result) lets the engine keep using the whole guard on the
    /// `false` path without borrowing conflicts.
    fn supports_fork(&self, num_cores: usize) -> bool {
        let _ = num_cores;
        false
    }

    /// Folds observations accumulated by forked shards back into the
    /// guard. No-op when [`MemGuard::fork_cores`] returned `None`.
    fn merge_forked(&mut self) {}
}

/// A per-core slice of a [`MemGuard`], usable from a worker thread.
///
/// A shard only ever sees accesses for its own core, so all its mutable
/// state (RCache tag arrays, per-core counters) is private to one worker;
/// determinism follows because the check result depends only on the
/// shard's own history, never on which thread runs it.
pub trait CoreGuard: Send {
    /// As [`MemGuard::check`], for this shard's core only.
    fn check(&mut self, access: &MemAccess, vm: &VirtualMemorySpace) -> GuardCheck;

    /// As [`MemGuard::on_kernel_end`], flushing this core's cached
    /// metadata for `kernel_id`. The engine calls every shard at the
    /// quantum drain where the kernel retires.
    fn on_kernel_end(&mut self, kernel_id: u16);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A guard that allows everything; used to assert the trait is
    /// object-safe and the simulator's plumbing works.
    struct NullGuard;

    impl MemGuard for NullGuard {
        fn check(&mut self, _a: &MemAccess, _vm: &VirtualMemorySpace) -> GuardCheck {
            GuardCheck::allow_free()
        }
        fn on_kernel_end(&mut self, _k: u16) {}
        fn name(&self) -> &str {
            "null"
        }
    }

    #[test]
    fn guard_is_object_safe() {
        let mut g = NullGuard;
        let dyn_g: &mut dyn MemGuard = &mut g;
        assert_eq!(dyn_g.name(), "null");
    }

    #[test]
    fn allow_free_has_no_stall() {
        let c = GuardCheck::allow_free();
        assert_eq!(c.verdict, GuardVerdict::Allow);
        assert_eq!(c.stall_cycles, 0);
        assert_eq!(c.path, CheckPath::Unchecked);
    }
}
