//! Kernel listings, including vendor-flavoured renderings of the three GPU
//! addressing methods (paper Figs. 2 and 3).

use crate::instr::{AddrExpr, Instr};
use crate::kernel::Kernel;
use std::fmt::Write as _;

/// Renders a kernel as a generic IR listing.
pub fn disassemble(kernel: &Kernel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".kernel {}", kernel.name());
    for p in kernel.params() {
        let _ = writeln!(out, "  .param {} ({:?})", p.name(), p.kind());
    }
    for l in kernel.locals() {
        let _ = writeln!(
            out,
            "  .local {} [{}B/thread]",
            l.name(),
            l.bytes_per_thread()
        );
    }
    if kernel.shared_bytes() > 0 {
        let _ = writeln!(out, "  .shared {}B", kernel.shared_bytes());
    }
    for (bi, blk) in kernel.blocks().iter().enumerate() {
        let _ = writeln!(out, "bb{bi}:");
        for i in blk.instrs() {
            let _ = writeln!(out, "  {i}");
        }
    }
    out
}

/// Vendor assembly style for [`vendor_listing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VendorStyle {
    /// Intel-style `send` instructions with binding-table indices in the
    /// message descriptor (addressing Method A).
    IntelSend,
    /// AMD GCN/RDNA-style flat addressing with scalar base setup
    /// (addressing Method B).
    AmdFlat,
    /// Nvidia SASS-style `LDG`/`STG` with constant-bank kernel arguments
    /// (addressing Method B with constant-memory bases).
    NvidiaSass,
}

/// Renders the memory instructions of `kernel` in a vendor-flavoured style,
/// reproducing the contrast of paper Fig. 3. Non-memory instructions are
/// rendered generically; the point of the listing is how each vendor spells
/// its addressing method.
pub fn vendor_listing(kernel: &Kernel, style: VendorStyle) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// {} — {:?}", kernel.name(), style);
    for (bid, _idx, instr) in kernel.iter_instrs() {
        match instr {
            Instr::Ld { dst, addr, .. } => {
                let _ = writeln!(
                    out,
                    "  {}",
                    render_mem(style, false, &format!("{dst}"), addr)
                );
            }
            Instr::St { src, addr, .. } => {
                let _ = writeln!(
                    out,
                    "  {}",
                    render_mem(style, true, &format!("{src}"), addr)
                );
            }
            Instr::Jmp { .. } | Instr::Bra { .. } | Instr::Ret => {
                let _ = writeln!(out, "  {instr} // {bid}");
            }
            other => {
                let _ = writeln!(out, "  {other}");
            }
        }
    }
    out
}

fn render_mem(style: VendorStyle, is_store: bool, val: &str, addr: &AddrExpr) -> String {
    match style {
        VendorStyle::IntelSend => {
            // The eight LSBs of the message descriptor carry the BTI.
            let (bti, off) = match addr {
                AddrExpr::BindingTable { bti, offset } => (*bti, format!("{offset}")),
                AddrExpr::BaseOffset { base, offset } => {
                    (0xfe, format!("{base}+{offset} /* stateless */"))
                }
                AddrExpr::Flat { addr } => (0xff, format!("{addr} /* stateless */")),
            };
            if is_store {
                format!("sends null:w {val} {off} 0x8C 0x0402_5E{bti:02X}")
            } else {
                format!("send {val}:w {off} 0xC 0x0420_5E{bti:02X}")
            }
        }
        VendorStyle::AmdFlat => {
            let a = match addr {
                AddrExpr::Flat { addr } => format!("v[{addr}]"),
                AddrExpr::BaseOffset { base, offset } => format!("v[{base}+{offset}]"),
                AddrExpr::BindingTable { bti, offset } => format!("s[bt{bti}]+v[{offset}]"),
            };
            if is_store {
                format!("global_store_dword {a}, {val}, off")
            } else {
                format!("global_load_dword {val}, {a}, off")
            }
        }
        VendorStyle::NvidiaSass => {
            let a = match addr {
                AddrExpr::Flat { addr } => format!("[{addr}]"),
                AddrExpr::BaseOffset { base, offset } => format!("[{base}+{offset}]"),
                AddrExpr::BindingTable { bti, offset } => format!("[c[0x0][arg{bti}]+{offset}]"),
            };
            if is_store {
                format!("STG.E.SYS {a}, {val}")
            } else {
                format!("LDG.E.SYS {val}, {a}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::instr::{MemSpace, MemWidth, Operand};

    fn vecadd(method: char) -> Kernel {
        let mut b = KernelBuilder::new("add");
        let a = b.param_buffer("a", true);
        let c = b.param_buffer("c", false);
        let tid = b.global_thread_id();
        let off = b.shl(tid, Operand::Imm(2));
        let addr_a = match method {
            'A' => b.binding_table(0, off),
            'B' => {
                let full = b.add(a, off);
                b.flat(full)
            }
            _ => b.base_offset(a, off),
        };
        let x = b.ld(MemSpace::Global, MemWidth::W4, addr_a);
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(c, off), x);
        b.ret();
        b.finish().unwrap()
    }

    #[test]
    fn intel_listing_carries_bti_in_descriptor() {
        let k = vecadd('A');
        let s = vendor_listing(&k, VendorStyle::IntelSend);
        assert!(s.contains("0x0420_5E00"), "{s}");
    }

    #[test]
    fn nvidia_listing_uses_ldg() {
        let k = vecadd('B');
        let s = vendor_listing(&k, VendorStyle::NvidiaSass);
        assert!(s.contains("LDG.E.SYS"), "{s}");
        assert!(s.contains("STG.E.SYS"), "{s}");
    }

    #[test]
    fn amd_listing_uses_global_load() {
        let k = vecadd('B');
        let s = vendor_listing(&k, VendorStyle::AmdFlat);
        assert!(s.contains("global_load_dword"), "{s}");
    }

    #[test]
    fn generic_disasm_lists_blocks_and_params() {
        let k = vecadd('C');
        let s = disassemble(&k);
        assert!(s.contains(".kernel add"));
        assert!(s.contains(".param a"));
        assert!(s.contains("bb0:"));
    }
}
