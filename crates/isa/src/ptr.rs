//! GPUShield tagged-pointer format (paper Fig. 7).
//!
//! A 64-bit pointer carries a 48-bit virtual address in its low bits; the
//! upper 16 bits are unused by GPU address translation and are repurposed:
//!
//! ```text
//! 63 62 61           48 47                          0
//! +----+---------------+-----------------------------+
//! | C  |   14-bit info |      virtual address        |
//! +----+---------------+-----------------------------+
//! ```
//!
//! * `C = 0` — **Type 1, unprotected**: static analysis proved every access
//!   through this pointer in bounds, so the hardware skips bounds checking.
//!   Plain untagged addresses also decode as this class.
//! * `C = 1` — **Type 2, base type**: `info` holds the *encrypted* 14-bit
//!   buffer ID used to index the Region Bounds Table.
//! * `C = 2` — **Type 3, offset-optimized**: `info` holds `log2` of the
//!   (power-of-two padded) buffer size; base+offset accesses are checked
//!   against it without any RBT access.

use std::fmt;

/// Number of virtual-address bits carried in a pointer (x86-64 style).
pub const VA_BITS: u32 = 48;
/// Width of the buffer-ID / size field embedded in a pointer.
pub const ID_BITS: u32 = 14;

const VA_MASK: u64 = (1 << VA_BITS) - 1;
const INFO_MASK: u64 = (1 << ID_BITS) - 1;
const INFO_SHIFT: u32 = VA_BITS;
const CLASS_SHIFT: u32 = 62;

/// The protection class encoded in a pointer's two most significant bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PtrClass {
    /// Type 1: bounds checking statically elided (or an untagged pointer).
    Unprotected,
    /// Type 2: encrypted buffer ID embedded; checked against the RBT.
    Region,
    /// Type 3: `log2(size)` embedded; checked without an RBT access.
    SizeEmbedded,
}

impl fmt::Display for PtrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PtrClass::Unprotected => "type1/unprotected",
            PtrClass::Region => "type2/region",
            PtrClass::SizeEmbedded => "type3/size-embedded",
        };
        f.write_str(s)
    }
}

/// A 64-bit GPU pointer with GPUShield metadata in its upper bits.
///
/// `TaggedPtr` is a transparent value type: pointer arithmetic performed by
/// kernels operates on the raw `u64` and naturally preserves the tag, which
/// is exactly the property the paper relies on ("the embedded buffer ID will
/// be propagated with any pointer arithmetic instruction", §5.2.4).
///
/// # Example
///
/// ```
/// use gpushield_isa::{PtrClass, TaggedPtr};
///
/// let p = TaggedPtr::with_region_id(0x2512_5460_0000, 0x11B);
/// assert_eq!(p.class(), PtrClass::Region);
/// assert_eq!(p.info(), 0x11B);
/// // Offsetting the raw value keeps the tag intact.
/// let q = TaggedPtr::from_raw(p.raw() + 64);
/// assert_eq!(q.info(), 0x11B);
/// assert_eq!(q.va(), 0x2512_5460_0040);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct TaggedPtr(u64);

impl TaggedPtr {
    /// Wraps a raw 64-bit register value as a pointer.
    pub fn from_raw(raw: u64) -> Self {
        TaggedPtr(raw)
    }

    /// Creates a Type 1 (unprotected) pointer to `va`.
    ///
    /// # Panics
    ///
    /// Panics if `va` does not fit in [`VA_BITS`] bits.
    pub fn unprotected(va: u64) -> Self {
        assert_eq!(va & !VA_MASK, 0, "virtual address exceeds {VA_BITS} bits");
        TaggedPtr(va)
    }

    /// Creates a Type 2 pointer carrying an encrypted region ID.
    ///
    /// # Panics
    ///
    /// Panics if `va` exceeds [`VA_BITS`] bits or `id` exceeds [`ID_BITS`]
    /// bits.
    pub fn with_region_id(va: u64, id: u16) -> Self {
        assert_eq!(va & !VA_MASK, 0, "virtual address exceeds {VA_BITS} bits");
        assert_eq!(u64::from(id) & !INFO_MASK, 0, "id exceeds {ID_BITS} bits");
        TaggedPtr((1u64 << CLASS_SHIFT) | (u64::from(id) << INFO_SHIFT) | va)
    }

    /// Creates a Type 3 pointer carrying `log2` of the padded buffer size.
    ///
    /// # Panics
    ///
    /// Panics if `va` exceeds [`VA_BITS`] bits or `log2_size >= 2^14`.
    pub fn with_log2_size(va: u64, log2_size: u8) -> Self {
        assert_eq!(va & !VA_MASK, 0, "virtual address exceeds {VA_BITS} bits");
        TaggedPtr((2u64 << CLASS_SHIFT) | (u64::from(log2_size) << INFO_SHIFT) | va)
    }

    /// The raw 64-bit value as stored in a register.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The 48-bit virtual address, i.e. what the AGU sends to translation.
    pub fn va(self) -> u64 {
        self.0 & VA_MASK
    }

    /// The 14-bit metadata field (encrypted ID or `log2` size).
    pub fn info(self) -> u16 {
        ((self.0 >> INFO_SHIFT) & INFO_MASK) as u16
    }

    /// The protection class from the two most significant bits.
    ///
    /// The encoding reserves `C = 3`; hardware treats it as unprotected so a
    /// forged class field cannot crash the checker itself.
    pub fn class(self) -> PtrClass {
        match self.0 >> CLASS_SHIFT {
            1 => PtrClass::Region,
            2 => PtrClass::SizeEmbedded,
            _ => PtrClass::Unprotected,
        }
    }

    /// Returns a copy with the 14-bit info field replaced.
    pub fn with_info(self, info: u16) -> Self {
        let cleared = self.0 & !(INFO_MASK << INFO_SHIFT);
        TaggedPtr(cleared | ((u64::from(info) & INFO_MASK) << INFO_SHIFT))
    }
}

impl fmt::Display for TaggedPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class() {
            PtrClass::Unprotected => write!(f, "0x{:012x}", self.va()),
            PtrClass::Region => write!(f, "0x{:012x}[id=0x{:04x}]", self.va(), self.info()),
            PtrClass::SizeEmbedded => write!(f, "0x{:012x}[log2={}]", self.va(), self.info()),
        }
    }
}

impl From<TaggedPtr> for u64 {
    fn from(p: TaggedPtr) -> u64 {
        p.raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unprotected_roundtrip() {
        let p = TaggedPtr::unprotected(0xdead_beef);
        assert_eq!(p.class(), PtrClass::Unprotected);
        assert_eq!(p.va(), 0xdead_beef);
        assert_eq!(p.info(), 0);
    }

    #[test]
    fn region_roundtrip() {
        let p = TaggedPtr::with_region_id(0xffff_ffff_ffff, 0x3fff);
        assert_eq!(p.class(), PtrClass::Region);
        assert_eq!(p.va(), 0xffff_ffff_ffff);
        assert_eq!(p.info(), 0x3fff);
    }

    #[test]
    fn size_roundtrip() {
        let p = TaggedPtr::with_log2_size(0x1000, 14);
        assert_eq!(p.class(), PtrClass::SizeEmbedded);
        assert_eq!(p.info(), 14);
    }

    #[test]
    fn arithmetic_preserves_tag() {
        let p = TaggedPtr::with_region_id(0x4000, 0x123);
        let q = TaggedPtr::from_raw(p.raw().wrapping_add(0x7fff));
        assert_eq!(q.class(), PtrClass::Region);
        assert_eq!(q.info(), 0x123);
        assert_eq!(q.va(), 0x4000 + 0x7fff);
    }

    #[test]
    fn class_three_reads_as_unprotected() {
        let p = TaggedPtr::from_raw(3u64 << 62);
        assert_eq!(p.class(), PtrClass::Unprotected);
    }

    #[test]
    #[should_panic(expected = "virtual address exceeds")]
    fn va_overflow_panics() {
        let _ = TaggedPtr::unprotected(1 << 48);
    }

    #[test]
    fn with_info_replaces_only_info() {
        let p = TaggedPtr::with_region_id(0x1234, 0x1).with_info(0x2aaa);
        assert_eq!(p.class(), PtrClass::Region);
        assert_eq!(p.info(), 0x2aaa);
        assert_eq!(p.va(), 0x1234);
    }
}
