//! Structural validation of kernels.

use crate::instr::{AddrExpr, BlockId, Instr, MemSpace, Operand, VReg};
use crate::kernel::{Kernel, ParamKind};
use std::error::Error;
use std::fmt;

/// A structural defect found in a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A block has no terminator as its final instruction.
    MissingTerminator(BlockId),
    /// A terminator appears before the end of a block.
    EarlyTerminator(BlockId, usize),
    /// A branch or jump targets a block that does not exist.
    BadTarget(BlockId, BlockId),
    /// An operand references a parameter slot that was never declared.
    BadParam(BlockId, usize, u8),
    /// An operand references a local variable that was never declared.
    BadLocal(BlockId, usize, u8),
    /// A binding-table access references a slot with no buffer parameter.
    BadBindingTable(BlockId, usize, u8),
    /// An instruction reads or writes a vector register outside the
    /// kernel's declared register count (would otherwise index out of
    /// bounds in the analyser's state vectors and the warp register file).
    BadReg(BlockId, usize, VReg),
    /// A store targets read-only constant memory.
    ConstStore(BlockId, usize),
    /// The kernel has no `Ret` anywhere.
    NoExit,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::MissingTerminator(b) => write!(f, "block {b} lacks a terminator"),
            ValidateError::EarlyTerminator(b, i) => {
                write!(f, "terminator before end of block {b} at index {i}")
            }
            ValidateError::BadTarget(b, t) => write!(f, "block {b} branches to missing {t}"),
            ValidateError::BadParam(b, i, p) => {
                write!(f, "instruction {b}:{i} references undeclared parameter {p}")
            }
            ValidateError::BadLocal(b, i, v) => write!(
                f,
                "instruction {b}:{i} references undeclared local variable {v}"
            ),
            ValidateError::BadBindingTable(b, i, bti) => write!(
                f,
                "instruction {b}:{i} uses binding-table slot {bti} with no buffer parameter"
            ),
            ValidateError::BadReg(b, i, r) => write!(
                f,
                "instruction {b}:{i} references register r{} beyond the declared register count",
                r.0
            ),
            ValidateError::ConstStore(b, i) => {
                write!(f, "instruction {b}:{i} stores to read-only constant memory")
            }
            ValidateError::NoExit => f.write_str("kernel has no ret instruction"),
        }
    }
}

impl Error for ValidateError {}

/// Validates a kernel's structural invariants.
///
/// # Errors
///
/// Returns the first [`ValidateError`] found; a kernel accepted here can be
/// executed by the simulator without structural panics.
pub fn validate(kernel: &Kernel) -> Result<(), ValidateError> {
    let nblocks = kernel.blocks().len() as u32;
    let nparams = kernel.params().len() as u8;
    let nlocals = kernel.locals().len() as u8;
    let nregs = kernel.num_regs();
    let mut has_ret = false;

    let check_target = |from: BlockId, t: BlockId| {
        if t.0 >= nblocks {
            Err(ValidateError::BadTarget(from, t))
        } else {
            Ok(())
        }
    };

    for (bi, blk) in kernel.blocks().iter().enumerate() {
        let bid = BlockId(bi as u32);
        if blk.terminator().is_none() {
            return Err(ValidateError::MissingTerminator(bid));
        }
        let last = blk.instrs().len() - 1;
        for (ii, instr) in blk.instrs().iter().enumerate() {
            if instr.is_terminator() && ii != last {
                return Err(ValidateError::EarlyTerminator(bid, ii));
            }
            match instr {
                Instr::Jmp { target } => check_target(bid, *target)?,
                Instr::Bra {
                    taken, not_taken, ..
                } => {
                    check_target(bid, *taken)?;
                    check_target(bid, *not_taken)?;
                }
                Instr::Ret => has_ret = true,
                Instr::St {
                    space: MemSpace::Const | MemSpace::Texture,
                    ..
                }
                | Instr::AtomAdd {
                    space: MemSpace::Const | MemSpace::Texture,
                    ..
                } => return Err(ValidateError::ConstStore(bid, ii)),
                _ => {}
            }
            for op in instr.sources() {
                match op {
                    Operand::Param(p) if p >= nparams => {
                        return Err(ValidateError::BadParam(bid, ii, p));
                    }
                    Operand::LocalBase(v) if v >= nlocals => {
                        return Err(ValidateError::BadLocal(bid, ii, v));
                    }
                    Operand::Reg(r) if r.0 >= nregs => {
                        return Err(ValidateError::BadReg(bid, ii, r));
                    }
                    _ => {}
                }
            }
            if let Some(r) = instr.dst() {
                if r.0 >= nregs {
                    return Err(ValidateError::BadReg(bid, ii, r));
                }
            }
            if let Instr::Ld { addr, .. } | Instr::St { addr, .. } | Instr::AtomAdd { addr, .. } =
                instr
            {
                if let AddrExpr::BindingTable { bti, .. } = addr {
                    let ok = kernel
                        .params()
                        .get(usize::from(*bti))
                        .map(|p| matches!(p.kind(), ParamKind::Buffer { .. }))
                        .unwrap_or(false);
                    if !ok {
                        return Err(ValidateError::BadBindingTable(bid, ii, *bti));
                    }
                }
            }
        }
    }

    if !has_ret {
        return Err(ValidateError::NoExit);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::instr::{MemWidth, Operand};

    #[test]
    fn valid_kernel_passes() {
        let mut b = KernelBuilder::new("k");
        b.ret();
        assert!(b.finish().is_ok());
    }

    #[test]
    fn missing_param_detected() {
        // Build by hand to bypass the builder's panics: use a raw Operand.
        let mut b = KernelBuilder::new("k");
        let _ = b.mov(Operand::Param(3));
        b.ret();
        assert_eq!(
            b.finish().unwrap_err(),
            ValidateError::BadParam(BlockId(0), 0, 3)
        );
    }

    #[test]
    fn const_store_rejected() {
        let mut b = KernelBuilder::new("k");
        let c = b.param_buffer_in("c", MemSpace::Const, true);
        b.st(
            MemSpace::Const,
            MemWidth::W4,
            b.base_offset(c, Operand::Imm(0)),
            Operand::Imm(1),
        );
        b.ret();
        assert!(matches!(
            b.finish().unwrap_err(),
            ValidateError::ConstStore(_, _)
        ));
    }

    #[test]
    fn binding_table_must_hit_buffer_param() {
        let mut b = KernelBuilder::new("k");
        let _n = b.param_scalar("n");
        let addr = b.binding_table(0, Operand::Imm(0));
        let _ = b.ld(MemSpace::Global, MemWidth::W4, addr);
        b.ret();
        assert!(matches!(
            b.finish().unwrap_err(),
            ValidateError::BadBindingTable(_, _, 0)
        ));
    }

    #[test]
    fn out_of_range_source_register_rejected() {
        use crate::instr::VReg;
        use crate::kernel::BasicBlock;
        // r7 read with only 1 declared register: previously an index panic
        // deep in the analyser / warp register file, now a typed error.
        let blk = BasicBlock::from_instrs(vec![
            Instr::Mov {
                dst: VReg(0),
                src: Operand::Reg(VReg(7)),
            },
            Instr::Ret,
        ]);
        let err = Kernel::from_raw("k".to_string(), vec![], vec![], vec![blk], 1, 0).unwrap_err();
        assert_eq!(err, ValidateError::BadReg(BlockId(0), 0, VReg(7)));
    }

    #[test]
    fn out_of_range_destination_register_rejected() {
        use crate::instr::VReg;
        use crate::kernel::BasicBlock;
        let blk = BasicBlock::from_instrs(vec![
            Instr::Mov {
                dst: VReg(3),
                src: Operand::Imm(0),
            },
            Instr::Ret,
        ]);
        let err = Kernel::from_raw("k".to_string(), vec![], vec![], vec![blk], 2, 0).unwrap_err();
        assert_eq!(err, ValidateError::BadReg(BlockId(0), 0, VReg(3)));
    }

    #[test]
    fn out_of_range_branch_cond_register_rejected() {
        use crate::instr::VReg;
        use crate::kernel::BasicBlock;
        let b0 = BasicBlock::from_instrs(vec![Instr::Bra {
            cond: Operand::Reg(VReg(9)),
            taken: BlockId(1),
            not_taken: BlockId(1),
        }]);
        let b1 = BasicBlock::from_instrs(vec![Instr::Ret]);
        let err =
            Kernel::from_raw("k".to_string(), vec![], vec![], vec![b0, b1], 1, 0).unwrap_err();
        assert_eq!(err, ValidateError::BadReg(BlockId(0), 0, VReg(9)));
    }

    #[test]
    fn branch_to_missing_block_rejected() {
        use crate::kernel::BasicBlock;
        let b0 = BasicBlock::from_instrs(vec![Instr::Jmp { target: BlockId(5) }]);
        let err = Kernel::from_raw("k".to_string(), vec![], vec![], vec![b0], 0, 0).unwrap_err();
        assert_eq!(err, ValidateError::BadTarget(BlockId(0), BlockId(5)));
    }

    #[test]
    fn undeclared_local_detected() {
        let mut b = KernelBuilder::new("k");
        let _ = b.mov(Operand::LocalBase(0));
        b.ret();
        assert!(matches!(
            b.finish().unwrap_err(),
            ValidateError::BadLocal(_, _, 0)
        ));
    }
}
