//! Kernel container: parameters, local variables, and the block graph.

use crate::instr::{BlockId, Instr, MemSpace};
use std::fmt;

/// Kind of a kernel parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamKind {
    /// A pointer to a device buffer in the given space. The driver binds a
    /// tagged base address at launch. `readonly` buffers may be placed in
    /// constant/texture-like read-only paths and are enforced as read-only
    /// by GPUShield's RBT metadata.
    Buffer {
        /// Memory space the buffer lives in.
        space: MemSpace,
        /// True when the kernel may only read through this pointer.
        readonly: bool,
    },
    /// A plain scalar value (no bounds metadata).
    Scalar,
}

/// A declared kernel parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    name: String,
    kind: ParamKind,
}

impl Param {
    /// Creates a parameter declaration.
    pub fn new(name: impl Into<String>, kind: ParamKind) -> Self {
        Param {
            name: name.into(),
            kind,
        }
    }

    /// The parameter's source-level name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter's kind.
    pub fn kind(&self) -> ParamKind {
        self.kind
    }

    /// True if this parameter is a buffer pointer (any space).
    pub fn is_buffer(&self) -> bool {
        matches!(self.kind, ParamKind::Buffer { .. })
    }
}

/// A kernel variable spilled to off-chip local (stack) memory.
///
/// Per §2.1 of the paper, arrays that are too large for registers or are
/// dynamically indexed live in local memory; GPUShield treats *each local
/// variable* as a separate protected buffer. The driver lays a variable out
/// interleaved across the threads of a launch (consecutive threads own
/// consecutive 32-bit words, §3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalVar {
    name: String,
    bytes_per_thread: u64,
}

impl LocalVar {
    /// Declares a local variable occupying `bytes_per_thread` bytes in each
    /// thread's logical stack frame.
    pub fn new(name: impl Into<String>, bytes_per_thread: u64) -> Self {
        LocalVar {
            name: name.into(),
            bytes_per_thread,
        }
    }

    /// The variable's source-level name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bytes each thread owns in this variable.
    pub fn bytes_per_thread(&self) -> u64 {
        self.bytes_per_thread
    }
}

/// A straight-line sequence of instructions ending in a terminator.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BasicBlock {
    instrs: Vec<Instr>,
}

impl BasicBlock {
    /// Builds a block from an instruction list (used by instrumentation
    /// passes; validity is checked when the kernel is assembled).
    pub fn from_instrs(instrs: Vec<Instr>) -> Self {
        BasicBlock { instrs }
    }

    /// The block's instructions, terminator last.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    pub(crate) fn push(&mut self, i: Instr) {
        self.instrs.push(i);
    }

    /// The terminator, if the block is complete.
    pub fn terminator(&self) -> Option<&Instr> {
        self.instrs.last().filter(|i| i.is_terminator())
    }

    /// Successor blocks implied by the terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self.terminator() {
            Some(Instr::Jmp { target }) => vec![*target],
            Some(Instr::Bra {
                taken, not_taken, ..
            }) => {
                if taken == not_taken {
                    vec![*taken]
                } else {
                    vec![*taken, *not_taken]
                }
            }
            _ => vec![],
        }
    }
}

/// A complete GPU kernel: metadata plus a CFG of basic blocks.
///
/// Kernels are produced by [`crate::KernelBuilder`] and are immutable
/// afterwards; the compiler's Bounds-Analysis Table references instructions
/// by `(BlockId, index)` pairs which therefore stay stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    name: String,
    params: Vec<Param>,
    locals: Vec<LocalVar>,
    blocks: Vec<BasicBlock>,
    num_regs: u16,
    shared_bytes: u64,
}

impl Kernel {
    /// Assembles and validates a kernel from raw parts. This is the entry
    /// point for instrumentation passes that rewrite an existing kernel's
    /// blocks (the normal construction path is [`crate::KernelBuilder`]).
    ///
    /// # Errors
    ///
    /// Returns a [`crate::ValidateError`] when the assembled kernel is
    /// structurally invalid.
    pub fn from_raw(
        name: String,
        params: Vec<Param>,
        locals: Vec<LocalVar>,
        blocks: Vec<BasicBlock>,
        num_regs: u16,
        shared_bytes: u64,
    ) -> Result<Self, crate::ValidateError> {
        let k = Kernel::from_parts(name, params, locals, blocks, num_regs, shared_bytes);
        crate::validate(&k)?;
        Ok(k)
    }

    pub(crate) fn from_parts(
        name: String,
        params: Vec<Param>,
        locals: Vec<LocalVar>,
        blocks: Vec<BasicBlock>,
        num_regs: u16,
        shared_bytes: u64,
    ) -> Self {
        Kernel {
            name,
            params,
            locals,
            blocks,
            num_regs,
            shared_bytes,
        }
    }

    /// The kernel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared parameters in argument order.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Declared local-memory variables.
    pub fn locals(&self) -> &[LocalVar] {
        &self.locals
    }

    /// The basic blocks; `BlockId(i)` indexes this slice.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// A block by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// Number of vector registers the kernel uses.
    pub fn num_regs(&self) -> u16 {
        self.num_regs
    }

    /// Shared-memory bytes per workgroup.
    pub fn shared_bytes(&self) -> u64 {
        self.shared_bytes
    }

    /// Iterates over `(block, index, instruction)` in layout order.
    pub fn iter_instrs(&self) -> impl Iterator<Item = (BlockId, usize, &Instr)> {
        self.blocks.iter().enumerate().flat_map(|(b, blk)| {
            blk.instrs()
                .iter()
                .enumerate()
                .map(move |(i, ins)| (BlockId(b as u32), i, ins))
        })
    }

    /// Total static instruction count.
    pub fn static_instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs().len()).sum()
    }

    /// Number of buffer parameters (the quantity plotted in paper Fig. 1,
    /// before local variables are added).
    pub fn buffer_param_count(&self) -> usize {
        self.params.iter().filter(|p| p.is_buffer()).count()
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::disasm::disassemble(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Operand;

    #[test]
    fn block_successors() {
        let mut b = BasicBlock::default();
        b.push(Instr::Bra {
            cond: Operand::Imm(1),
            taken: BlockId(5),
            not_taken: BlockId(1),
        });
        assert_eq!(b.successors(), vec![BlockId(5), BlockId(1)]);
        let mut j = BasicBlock::default();
        j.push(Instr::Ret);
        assert!(j.successors().is_empty());
    }

    #[test]
    fn param_kinds() {
        let p = Param::new(
            "a",
            ParamKind::Buffer {
                space: MemSpace::Global,
                readonly: true,
            },
        );
        assert!(p.is_buffer());
        assert_eq!(p.name(), "a");
        let s = Param::new("n", ParamKind::Scalar);
        assert!(!s.is_buffer());
    }
}
