//! SIMT kernel intermediate representation for the GPUShield reproduction.
//!
//! This crate is the contract between every other layer of the system: the
//! compiler crate analyses it, the driver crate binds tagged pointers to its
//! parameters, and the simulator crate executes it cycle by cycle.
//!
//! The IR deliberately mirrors the memory-addressing reality described in
//! §2.2 of the paper: a memory instruction addresses memory through one of
//! the three GPU addressing methods of Fig. 2 (binding table + offset, full
//! virtual address, or base + offset), and base addresses carry GPUShield's
//! pointer tag (Fig. 7) in their unused upper 16 bits.
//!
//! # Example
//!
//! ```
//! use gpushield_isa::{KernelBuilder, MemSpace, MemWidth, Operand};
//!
//! // c[i] = a[i] + b[i]
//! let mut b = KernelBuilder::new("vectoradd");
//! let a = b.param_buffer("a", true);
//! let bb = b.param_buffer("b", true);
//! let c = b.param_buffer("c", false);
//! let tid = b.global_thread_id();
//! let off = b.shl(tid, Operand::Imm(2)); // 4-byte elements
//! let x = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(a, off));
//! let y = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(bb, off));
//! let s = b.add(x, y);
//! b.st(MemSpace::Global, MemWidth::W4, b.base_offset(c, off), s);
//! b.ret();
//! let kernel = b.finish().expect("valid kernel");
//! assert_eq!(kernel.name(), "vectoradd");
//! assert_eq!(kernel.params().len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bat;
mod builder;
mod cfg;
mod disasm;
mod instr;
mod kernel;
mod ptr;
mod validate;

pub use bat::{CheckPlan, SiteCert, SiteCheck};
pub use builder::{KernelBuilder, ParamRef};
pub use cfg::{Cfg, ReconvergenceTable};
pub use disasm::{disassemble, vendor_listing, VendorStyle};
pub use instr::{
    AddrExpr, BinOp, BlockId, CmpOp, Instr, MemSpace, MemWidth, Operand, Special, UnOp, VReg,
};
pub use kernel::{BasicBlock, Kernel, LocalVar, Param, ParamKind};
pub use ptr::{PtrClass, TaggedPtr, ID_BITS, VA_BITS};
pub use validate::{validate, ValidateError};
