//! Control-flow-graph analysis: predecessors/successors, post-dominators,
//! and the SIMT reconvergence table.
//!
//! GPUs reconverge diverged warps at the *immediate post-dominator* of the
//! divergent branch (Nvidia's `SSY`/`BSSY` points). The simulator's SIMT
//! stack consumes the [`ReconvergenceTable`] computed here; the compiler's
//! abstract interpreter reuses the same [`Cfg`].

use crate::instr::BlockId;
use crate::kernel::Kernel;
use std::collections::HashMap;

/// Control-flow graph of a kernel, with a virtual exit node so kernels with
/// multiple `Ret` blocks still have a single post-dominator root.
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
    /// Index of the virtual exit node (== number of real blocks).
    exit: usize,
}

impl Cfg {
    /// Builds the CFG of `kernel`.
    pub fn build(kernel: &Kernel) -> Self {
        let n = kernel.blocks().len();
        let exit = n;
        let mut succs = vec![Vec::new(); n + 1];
        let mut preds = vec![Vec::new(); n + 1];
        for (i, blk) in kernel.blocks().iter().enumerate() {
            let ss = blk.successors();
            if ss.is_empty() {
                // Ret (or malformed; validation catches that) flows to exit.
                succs[i].push(exit);
                preds[exit].push(i);
            } else {
                for s in ss {
                    succs[i].push(s.0 as usize);
                    preds[s.0 as usize].push(i);
                }
            }
        }
        Cfg { succs, preds, exit }
    }

    /// Successor blocks of `b` (virtual exit excluded).
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        self.succs[b.0 as usize]
            .iter()
            .filter(|&&s| s != self.exit)
            .map(|&s| BlockId(s as u32))
            .collect()
    }

    /// Predecessor blocks of `b`.
    pub fn predecessors(&self, b: BlockId) -> Vec<BlockId> {
        self.preds[b.0 as usize]
            .iter()
            .map(|&p| BlockId(p as u32))
            .collect()
    }

    /// Number of real blocks.
    pub fn len(&self) -> usize {
        self.exit
    }

    /// True when the kernel has no blocks (never the case for built kernels).
    pub fn is_empty(&self) -> bool {
        self.exit == 0
    }

    /// Reverse post-order of the reversed CFG starting at the virtual exit,
    /// as indices into the internal node numbering.
    fn reverse_cfg_rpo(&self) -> Vec<usize> {
        let n = self.exit + 1;
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        // Iterative DFS over predecessors-as-successors (the reversed graph).
        let mut stack: Vec<(usize, usize)> = vec![(self.exit, 0)];
        visited[self.exit] = true;
        while let Some(&(node, idx)) = stack.last() {
            if idx < self.preds[node].len() {
                stack.last_mut().expect("non-empty stack").1 += 1;
                let next = self.preds[node][idx];
                if !visited[next] {
                    visited[next] = true;
                    stack.push((next, 0));
                }
            } else {
                order.push(node);
                stack.pop();
            }
        }
        order.reverse();
        order
    }

    /// Computes immediate post-dominators using the Cooper–Harvey–Kennedy
    /// iterative algorithm on the reversed CFG. Returns, for each real
    /// block, its immediate post-dominator (`None` when the ipdom is the
    /// virtual exit, i.e. the block post-dominates everything after it).
    pub fn immediate_post_dominators(&self) -> Vec<Option<BlockId>> {
        let n = self.exit + 1;
        let rpo = self.reverse_cfg_rpo();
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b] = i;
        }
        let mut idom = vec![usize::MAX; n];
        idom[self.exit] = self.exit;

        let intersect = |idom: &[usize], rpo_pos: &[usize], mut a: usize, mut b: usize| {
            while a != b {
                while rpo_pos[a] > rpo_pos[b] {
                    a = idom[a];
                }
                while rpo_pos[b] > rpo_pos[a] {
                    b = idom[b];
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // Predecessors in the reversed graph are CFG successors.
                let mut new_idom = usize::MAX;
                for &s in &self.succs[b] {
                    if idom[s] != usize::MAX && rpo_pos[s] != usize::MAX {
                        new_idom = if new_idom == usize::MAX {
                            s
                        } else {
                            intersect(&idom, &rpo_pos, new_idom, s)
                        };
                    }
                }
                if new_idom != usize::MAX && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }

        (0..self.exit)
            .map(|b| {
                let d = idom[b];
                if d == usize::MAX || d == self.exit {
                    None
                } else {
                    Some(BlockId(d as u32))
                }
            })
            .collect()
    }

    /// Reverse post-order of the forward CFG starting at the entry block,
    /// as indices into the internal node numbering (the virtual exit is
    /// reachable and included but callers only look at real blocks).
    fn forward_rpo(&self) -> Vec<usize> {
        let n = self.exit + 1;
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        visited[0] = true;
        while let Some(&(node, idx)) = stack.last() {
            if idx < self.succs[node].len() {
                stack.last_mut().expect("non-empty stack").1 += 1;
                let next = self.succs[node][idx];
                if !visited[next] {
                    visited[next] = true;
                    stack.push((next, 0));
                }
            } else {
                order.push(node);
                stack.pop();
            }
        }
        order.reverse();
        order
    }

    /// Computes immediate (forward) dominators using the same
    /// Cooper–Harvey–Kennedy iteration as [`Cfg::immediate_post_dominators`],
    /// rooted at the entry block. Returns, for each real block, its
    /// immediate dominator; the entry block and any block unreachable from
    /// the entry map to `None`.
    pub fn immediate_dominators(&self) -> Vec<Option<BlockId>> {
        let n = self.exit + 1;
        let rpo = self.forward_rpo();
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b] = i;
        }
        let mut idom = vec![usize::MAX; n];
        idom[0] = 0;

        let intersect = |idom: &[usize], rpo_pos: &[usize], mut a: usize, mut b: usize| {
            while a != b {
                while rpo_pos[a] > rpo_pos[b] {
                    a = idom[a];
                }
                while rpo_pos[b] > rpo_pos[a] {
                    b = idom[b];
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom = usize::MAX;
                for &p in &self.preds[b] {
                    if idom[p] != usize::MAX && rpo_pos[p] != usize::MAX {
                        new_idom = if new_idom == usize::MAX {
                            p
                        } else {
                            intersect(&idom, &rpo_pos, new_idom, p)
                        };
                    }
                }
                if new_idom != usize::MAX && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }

        (0..self.exit)
            .map(|b| {
                let d = idom[b];
                if b == 0 || d == usize::MAX {
                    None
                } else {
                    Some(BlockId(d as u32))
                }
            })
            .collect()
    }

    /// True when block `a` dominates block `b` under the `idoms` tree
    /// returned by [`Cfg::immediate_dominators`] (every block dominates
    /// itself; the entry block dominates every reachable block).
    pub fn dominates(idoms: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match idoms.get(cur.0 as usize).copied().flatten() {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }
}

/// Per-branch reconvergence points: for every block ending in a divergent
/// branch, the block where diverged lanes re-join.
#[derive(Debug, Clone)]
pub struct ReconvergenceTable {
    ipdom: HashMap<BlockId, Option<BlockId>>,
}

impl ReconvergenceTable {
    /// Computes the table for `kernel`.
    pub fn build(kernel: &Kernel) -> Self {
        let cfg = Cfg::build(kernel);
        let ipdoms = cfg.immediate_post_dominators();
        let mut ipdom = HashMap::new();
        for (i, d) in ipdoms.iter().enumerate() {
            ipdom.insert(BlockId(i as u32), *d);
        }
        ReconvergenceTable { ipdom }
    }

    /// The reconvergence block for a branch in `block`; `None` means lanes
    /// only re-join at kernel exit.
    pub fn reconvergence_point(&self, block: BlockId) -> Option<BlockId> {
        self.ipdom.get(&block).copied().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::instr::Operand;

    #[test]
    fn diamond_reconverges_at_join() {
        let mut b = KernelBuilder::new("k");
        let t = b.mov(b.thread_id());
        let c = b.lt(t, Operand::Imm(4));
        b.if_then_else(
            c,
            |b| {
                let _ = b.add(t, Operand::Imm(1));
            },
            |b| {
                let _ = b.sub(t, Operand::Imm(1));
            },
        );
        b.ret();
        let k = b.finish().unwrap();
        // Blocks: 0 entry(bra), 1 then, 2 else, 3 join.
        let table = ReconvergenceTable::build(&k);
        assert_eq!(table.reconvergence_point(BlockId(0)), Some(BlockId(3)));
    }

    #[test]
    fn loop_header_ipdom_is_exit_block() {
        let mut b = KernelBuilder::new("k");
        let n = b.param_scalar("n");
        b.for_loop(Operand::Imm(0), n, 1, |b, i| {
            let _ = b.add(i, Operand::Imm(0));
        });
        b.ret();
        let k = b.finish().unwrap();
        // Blocks: 0 entry, 1 header, 2 body, 3 exit.
        let table = ReconvergenceTable::build(&k);
        assert_eq!(table.reconvergence_point(BlockId(1)), Some(BlockId(3)));
    }

    #[test]
    fn straight_line_has_no_reconvergence_needs() {
        let mut b = KernelBuilder::new("k");
        b.ret();
        let k = b.finish().unwrap();
        let cfg = Cfg::build(&k);
        assert_eq!(cfg.len(), 1);
        assert!(cfg.successors(BlockId(0)).is_empty());
    }

    #[test]
    fn forward_dominators_on_diamond() {
        let mut b = KernelBuilder::new("k");
        let t = b.mov(b.thread_id());
        let c = b.lt(t, Operand::Imm(4));
        b.if_then_else(
            c,
            |b| {
                let _ = b.add(t, Operand::Imm(1));
            },
            |b| {
                let _ = b.sub(t, Operand::Imm(1));
            },
        );
        b.ret();
        let k = b.finish().unwrap();
        // Blocks: 0 entry(bra), 1 then, 2 else, 3 join.
        let cfg = Cfg::build(&k);
        let idoms = cfg.immediate_dominators();
        assert_eq!(idoms[0], None);
        assert_eq!(idoms[1], Some(BlockId(0)));
        assert_eq!(idoms[2], Some(BlockId(0)));
        // Neither arm dominates the join; the branch block does.
        assert_eq!(idoms[3], Some(BlockId(0)));
        assert!(Cfg::dominates(&idoms, BlockId(0), BlockId(3)));
        assert!(!Cfg::dominates(&idoms, BlockId(1), BlockId(3)));
        assert!(Cfg::dominates(&idoms, BlockId(2), BlockId(2)));
    }

    #[test]
    fn forward_dominators_on_loop() {
        let mut b = KernelBuilder::new("k");
        let n = b.param_scalar("n");
        b.for_loop(Operand::Imm(0), n, 1, |b, i| {
            let _ = b.add(i, Operand::Imm(0));
        });
        b.ret();
        let k = b.finish().unwrap();
        // Blocks: 0 entry, 1 header, 2 body, 3 exit.
        let cfg = Cfg::build(&k);
        let idoms = cfg.immediate_dominators();
        assert_eq!(idoms[1], Some(BlockId(0)));
        // The back edge from the body does not lower the header's idom.
        assert_eq!(idoms[2], Some(BlockId(1)));
        assert_eq!(idoms[3], Some(BlockId(1)));
        assert!(Cfg::dominates(&idoms, BlockId(1), BlockId(2)));
        assert!(!Cfg::dominates(&idoms, BlockId(2), BlockId(3)));
    }

    #[test]
    fn forward_dominators_on_multi_exit() {
        use crate::instr::{CmpOp, Instr, VReg};
        use crate::kernel::BasicBlock;
        // 0: cmp + bra -> {1, 2}; both arms Ret (two real exits).
        let b0 = BasicBlock::from_instrs(vec![
            Instr::Cmp {
                op: CmpOp::Lt,
                dst: VReg(0),
                a: Operand::Special(crate::instr::Special::ThreadId),
                b: Operand::Imm(2),
            },
            Instr::Bra {
                cond: Operand::Reg(VReg(0)),
                taken: BlockId(1),
                not_taken: BlockId(2),
            },
        ]);
        let b1 = BasicBlock::from_instrs(vec![Instr::Ret]);
        let b2 = BasicBlock::from_instrs(vec![Instr::Ret]);
        let k = Kernel::from_raw(
            "multi_exit".to_string(),
            vec![],
            vec![],
            vec![b0, b1, b2],
            1,
            0,
        )
        .unwrap();
        let cfg = Cfg::build(&k);
        let idoms = cfg.immediate_dominators();
        assert_eq!(idoms, vec![None, Some(BlockId(0)), Some(BlockId(0))]);
        // Post-dominators still meet only at the virtual exit.
        let ipdoms = cfg.immediate_post_dominators();
        assert_eq!(ipdoms[0], None);
        assert!(!Cfg::dominates(&idoms, BlockId(1), BlockId(2)));
    }

    #[test]
    fn predecessors_track_branches() {
        let mut b = KernelBuilder::new("k");
        let t = b.mov(b.thread_id());
        let c = b.lt(t, Operand::Imm(4));
        b.if_then(c, |_| {});
        b.ret();
        let k = b.finish().unwrap();
        let cfg = Cfg::build(&k);
        // Join block (2) has preds entry (0) and then (1).
        let mut preds = cfg.predecessors(BlockId(2));
        preds.sort();
        assert_eq!(preds, vec![BlockId(0), BlockId(1)]);
    }
}
