//! Instruction set of the kernel IR.
//!
//! The IR is register-based and integer-only (workloads model floating-point
//! arithmetic with fixed-point integers; timing behaviour is unaffected).
//! Every register is a *vector* register: one 64-bit lane value per workitem
//! of a sub-workgroup, matching the SIMT execution model of §2.1.

use std::fmt;

/// A per-lane 64-bit vector register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u16);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A basic-block identifier; blocks are stored densely in a [`crate::Kernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Hardware-provided per-lane special values (CUDA `%tid` and friends).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Special {
    /// Workitem index within its workgroup (CUDA `threadIdx.x`).
    ThreadId,
    /// Workgroup index within the grid (CUDA `blockIdx.x`).
    BlockId,
    /// Workitems per workgroup (CUDA `blockDim.x`).
    BlockDim,
    /// Workgroups in the grid (CUDA `gridDim.x`).
    GridDim,
    /// Lane index within the sub-workgroup.
    LaneId,
}

impl fmt::Display for Special {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Special::ThreadId => "%tid",
            Special::BlockId => "%ctaid",
            Special::BlockDim => "%ntid",
            Special::GridDim => "%nctaid",
            Special::LaneId => "%laneid",
        };
        f.write_str(s)
    }
}

/// An instruction source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A vector register.
    Reg(VReg),
    /// A 64-bit immediate (sign-extended into lanes).
    Imm(i64),
    /// Kernel argument slot `n`; the driver binds its (possibly tagged)
    /// value at launch. Arguments live in constant memory on Nvidia GPUs
    /// and scalar registers on AMD GPUs (§2.2); we model the uniform value.
    Param(u8),
    /// Base address of declared local-memory variable `n` (driver-assigned,
    /// tagged like any other buffer pointer).
    LocalBase(u8),
    /// A hardware special value.
    Special(Special),
}

impl From<VReg> for Operand {
    fn from(r: VReg) -> Self {
        Operand::Reg(r)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
            Operand::Param(p) => write!(f, "c[0x0][arg{p}]"),
            Operand::LocalBase(v) => write!(f, "local[{v}]"),
            Operand::Special(s) => write!(f, "{s}"),
        }
    }
}

/// Unary ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Bitwise complement.
    Not,
    /// Two's-complement negation.
    Neg,
    /// Absolute value (signed).
    Abs,
}

/// Binary ALU operations. All operate on 64-bit lane values; `Div`/`Rem`
/// are signed and define division by zero as zero (GPU-style saturation
/// rather than a fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (x / 0 = 0).
    Div,
    /// Signed remainder (x % 0 = 0).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount masked to 6 bits).
    Shl,
    /// Logical shift right (shift amount masked to 6 bits).
    Shr,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
}

/// Comparison operations; results are 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

/// GPU memory spaces (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Off-chip, application-scoped global memory (includes SVM buffers and
    /// the device heap, which is carved out of global memory).
    Global,
    /// Off-chip, thread-scoped local (stack) memory.
    Local,
    /// On-chip, workgroup-scoped shared memory.
    Shared,
    /// Off-chip, read-only constant memory.
    Const,
    /// Off-chip, read-only texture/surface memory (Table 1's last
    /// read-only row; addressed like global memory but never writable).
    Texture,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemSpace::Global => "global",
            MemSpace::Local => "local",
            MemSpace::Shared => "shared",
            MemSpace::Const => "const",
            MemSpace::Texture => "texture",
        };
        f.write_str(s)
    }
}

/// Access width in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1 byte.
    W1,
    /// 2 bytes.
    W2,
    /// 4 bytes.
    W4,
    /// 8 bytes.
    W8,
}

impl MemWidth {
    /// The width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::W1 => 1,
            MemWidth::W2 => 2,
            MemWidth::W4 => 4,
            MemWidth::W8 => 8,
        }
    }
}

/// How a memory instruction forms its effective address — the three GPU
/// addressing methods of paper Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrExpr {
    /// Method A (Intel BTS): the binding table entry `bti` supplies the
    /// (tagged) base address; `offset` is per-lane.
    BindingTable {
        /// Binding-table index (the 8 LSBs of a `send` message descriptor).
        bti: u8,
        /// Per-lane byte offset.
        offset: Operand,
    },
    /// Method B: a full (tagged) virtual address held in `addr`.
    Flat {
        /// Per-lane tagged address.
        addr: Operand,
    },
    /// Method C: `base` holds a (tagged) base pointer; `offset` is added.
    BaseOffset {
        /// Tagged base pointer (typically a `Param` or `LocalBase`).
        base: Operand,
        /// Per-lane byte offset.
        offset: Operand,
    },
}

impl AddrExpr {
    /// Which Fig. 2 addressing method this expression uses: `'A'`, `'B'`,
    /// or `'C'`.
    pub fn method(&self) -> char {
        match self {
            AddrExpr::BindingTable { .. } => 'A',
            AddrExpr::Flat { .. } => 'B',
            AddrExpr::BaseOffset { .. } => 'C',
        }
    }
}

impl fmt::Display for AddrExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrExpr::BindingTable { bti, offset } => write!(f, "[BT[{bti}] + {offset}]"),
            AddrExpr::Flat { addr } => write!(f, "[{addr}]"),
            AddrExpr::BaseOffset { base, offset } => write!(f, "[{base} + {offset}]"),
        }
    }
}

/// One IR instruction. Every payload is a small `Copy` value, so the whole
/// instruction is `Copy` — the simulator's issue path reads instructions
/// straight out of the interned kernel without cloning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `dst = src`.
    Mov {
        /// Destination register.
        dst: VReg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = op a`.
    Un {
        /// Operation.
        op: UnOp,
        /// Destination register.
        dst: VReg,
        /// Source operand.
        a: Operand,
    },
    /// `dst = a op b`.
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination register.
        dst: VReg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = (a op b) ? 1 : 0`.
    Cmp {
        /// Comparison.
        op: CmpOp,
        /// Destination register.
        dst: VReg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = cond != 0 ? a : b` (per-lane select; the predication form of
    /// divergence avoidance).
    Sel {
        /// Destination register.
        dst: VReg,
        /// Per-lane condition.
        cond: Operand,
        /// Value when `cond != 0`.
        a: Operand,
        /// Value when `cond == 0`.
        b: Operand,
    },
    /// Memory load.
    Ld {
        /// Destination register.
        dst: VReg,
        /// Effective-address expression.
        addr: AddrExpr,
        /// Memory space.
        space: MemSpace,
        /// Access width.
        width: MemWidth,
    },
    /// Memory store.
    St {
        /// Value to store.
        src: Operand,
        /// Effective-address expression.
        addr: AddrExpr,
        /// Memory space.
        space: MemSpace,
        /// Access width.
        width: MemWidth,
    },
    /// Conditional branch: lanes with `cond != 0` go to `taken`, the rest
    /// to `not_taken`; the SIMT stack reconverges them at the immediate
    /// post-dominator.
    Bra {
        /// Per-lane condition.
        cond: Operand,
        /// Target block for lanes whose condition is non-zero.
        taken: BlockId,
        /// Target block for lanes whose condition is zero.
        not_taken: BlockId,
    },
    /// Unconditional jump ending a block.
    Jmp {
        /// Target block.
        target: BlockId,
    },
    /// Workgroup-wide barrier (`__syncthreads`).
    Bar,
    /// Atomic fetch-add: `dst = *addr; *addr += src`, serialized across
    /// lanes (and warps) touching the same location. Bounds-checked like a
    /// store.
    AtomAdd {
        /// Destination receiving the pre-add value.
        dst: VReg,
        /// Effective-address expression.
        addr: AddrExpr,
        /// Memory space (global only in practice).
        space: MemSpace,
        /// Access width.
        width: MemWidth,
        /// Per-lane addend.
        src: Operand,
    },
    /// Device-side heap allocation: `dst = malloc(size)` per active lane.
    /// The returned pointer carries the heap region's tag (§5.2.1).
    Malloc {
        /// Destination register receiving the tagged heap pointer.
        dst: VReg,
        /// Per-lane allocation size in bytes.
        size: Operand,
    },
    /// Device-side heap free (modelled as a no-op on the heap arena, but it
    /// costs the serialized allocator round-trip like `Malloc`).
    Free {
        /// Pointer previously returned by `Malloc`.
        ptr: Operand,
    },
    /// Kernel exit for all active lanes.
    Ret,
}

impl Instr {
    /// True for instructions that end a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Instr::Bra { .. } | Instr::Jmp { .. } | Instr::Ret)
    }

    /// The destination register written by this instruction, if any.
    pub fn dst(&self) -> Option<VReg> {
        match self {
            Instr::Mov { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Cmp { dst, .. }
            | Instr::Sel { dst, .. }
            | Instr::Ld { dst, .. }
            | Instr::AtomAdd { dst, .. }
            | Instr::Malloc { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// Source operands read by this instruction (address operands included).
    pub fn sources(&self) -> Vec<Operand> {
        fn addr_ops(a: &AddrExpr) -> Vec<Operand> {
            match a {
                AddrExpr::BindingTable { offset, .. } => vec![*offset],
                AddrExpr::Flat { addr } => vec![*addr],
                AddrExpr::BaseOffset { base, offset } => vec![*base, *offset],
            }
        }
        match self {
            Instr::Mov { src, .. } => vec![*src],
            Instr::Un { a, .. } => vec![*a],
            Instr::Bin { a, b, .. } | Instr::Cmp { a, b, .. } => vec![*a, *b],
            Instr::Sel { cond, a, b, .. } => vec![*cond, *a, *b],
            Instr::Ld { addr, .. } => addr_ops(addr),
            Instr::St { src, addr, .. } | Instr::AtomAdd { src, addr, .. } => {
                let mut v = addr_ops(addr);
                v.push(*src);
                v
            }
            Instr::Bra { cond, .. } => vec![*cond],
            Instr::Malloc { size, .. } => vec![*size],
            Instr::Free { ptr } => vec![*ptr],
            Instr::Jmp { .. } | Instr::Bar | Instr::Ret => vec![],
        }
    }

    /// True for `Ld`/`St`/`AtomAdd` (the instructions the BCU observes).
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Instr::Ld { .. } | Instr::St { .. } | Instr::AtomAdd { .. }
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            Instr::Un { op, dst, a } => write!(f, "{op:?} {dst}, {a}"),
            Instr::Bin { op, dst, a, b } => write!(f, "{op:?} {dst}, {a}, {b}"),
            Instr::Cmp { op, dst, a, b } => write!(f, "set{op:?} {dst}, {a}, {b}"),
            Instr::Sel { dst, cond, a, b } => write!(f, "sel {dst}, {cond}, {a}, {b}"),
            Instr::Ld {
                dst,
                addr,
                space,
                width,
            } => write!(f, "ld.{space}.b{} {dst}, {addr}", width.bytes() * 8),
            Instr::St {
                src,
                addr,
                space,
                width,
            } => write!(f, "st.{space}.b{} {addr}, {src}", width.bytes() * 8),
            Instr::AtomAdd {
                dst,
                addr,
                space,
                width,
                src,
            } => write!(
                f,
                "atom.add.{space}.b{} {dst}, {addr}, {src}",
                width.bytes() * 8
            ),
            Instr::Bra {
                cond,
                taken,
                not_taken,
            } => write!(f, "bra {cond}, {taken}, {not_taken}"),
            Instr::Jmp { target } => write!(f, "jmp {target}"),
            Instr::Bar => f.write_str("bar.sync"),
            Instr::Malloc { dst, size } => write!(f, "malloc {dst}, {size}"),
            Instr::Free { ptr } => write!(f, "free {ptr}"),
            Instr::Ret => f.write_str("ret"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminators() {
        assert!(Instr::Ret.is_terminator());
        assert!(Instr::Jmp { target: BlockId(0) }.is_terminator());
        assert!(Instr::Bra {
            cond: Operand::Imm(1),
            taken: BlockId(1),
            not_taken: BlockId(2),
        }
        .is_terminator());
        assert!(!Instr::Bar.is_terminator());
    }

    #[test]
    fn sources_cover_address_operands() {
        let i = Instr::St {
            src: Operand::Reg(VReg(3)),
            addr: AddrExpr::BaseOffset {
                base: Operand::Param(0),
                offset: Operand::Reg(VReg(1)),
            },
            space: MemSpace::Global,
            width: MemWidth::W4,
        };
        let srcs = i.sources();
        assert!(srcs.contains(&Operand::Param(0)));
        assert!(srcs.contains(&Operand::Reg(VReg(1))));
        assert!(srcs.contains(&Operand::Reg(VReg(3))));
    }

    #[test]
    fn addr_methods() {
        let a = AddrExpr::BindingTable {
            bti: 0,
            offset: Operand::Imm(0),
        };
        assert_eq!(a.method(), 'A');
        let b = AddrExpr::Flat {
            addr: Operand::Reg(VReg(0)),
        };
        assert_eq!(b.method(), 'B');
        let c = AddrExpr::BaseOffset {
            base: Operand::Param(0),
            offset: Operand::Imm(4),
        };
        assert_eq!(c.method(), 'C');
    }

    #[test]
    fn display_forms() {
        let i = Instr::Ld {
            dst: VReg(2),
            addr: AddrExpr::Flat {
                addr: Operand::Reg(VReg(1)),
            },
            space: MemSpace::Global,
            width: MemWidth::W4,
        };
        assert_eq!(i.to_string(), "ld.global.b32 r2, [r1]");
    }
}
