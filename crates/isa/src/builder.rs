//! Ergonomic construction of [`Kernel`]s.
//!
//! The builder keeps a *current block* cursor; straight-line helpers append
//! to it and structured-control-flow helpers (`if_then`, `for_loop`, …)
//! create and wire the necessary blocks, leaving the cursor at the join
//! point. All value-producing helpers allocate a fresh vector register and
//! return it, which gives kernel code an SSA-like feel while the underlying
//! registers stay plain mutable storage (loop induction variables use
//! [`KernelBuilder::assign`]).

use crate::instr::{
    AddrExpr, BinOp, BlockId, CmpOp, Instr, MemSpace, MemWidth, Operand, Special, UnOp, VReg,
};
use crate::kernel::{BasicBlock, Kernel, LocalVar, Param, ParamKind};
use crate::validate::{validate, ValidateError};

/// A handle to a declared kernel parameter, usable wherever an operand is
/// expected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamRef {
    index: u8,
}

impl ParamRef {
    /// The argument slot this parameter occupies.
    pub fn index(self) -> u8 {
        self.index
    }
}

impl From<ParamRef> for Operand {
    fn from(p: ParamRef) -> Operand {
        Operand::Param(p.index)
    }
}

/// Builder for [`Kernel`]s; see the crate-level example.
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    params: Vec<Param>,
    locals: Vec<LocalVar>,
    blocks: Vec<BasicBlock>,
    cur: BlockId,
    next_reg: u16,
    shared_bytes: u64,
}

impl KernelBuilder {
    /// Starts a kernel named `name` with an empty entry block.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            params: Vec::new(),
            locals: Vec::new(),
            blocks: vec![BasicBlock::default()],
            cur: BlockId(0),
            next_reg: 0,
            shared_bytes: 0,
        }
    }

    // ---- declarations -------------------------------------------------

    /// Declares a global-memory buffer parameter.
    pub fn param_buffer(&mut self, name: &str, readonly: bool) -> ParamRef {
        self.param_buffer_in(name, MemSpace::Global, readonly)
    }

    /// Declares a buffer parameter in an explicit memory space.
    ///
    /// # Panics
    ///
    /// Panics when more than 128 parameters are declared (the OpenCL 2.0
    /// kernel-argument limit the paper leans on, §2.1).
    pub fn param_buffer_in(&mut self, name: &str, space: MemSpace, readonly: bool) -> ParamRef {
        assert!(self.params.len() < 128, "kernel argument limit is 128");
        let index = self.params.len() as u8;
        self.params
            .push(Param::new(name, ParamKind::Buffer { space, readonly }));
        ParamRef { index }
    }

    /// Declares a scalar parameter.
    ///
    /// # Panics
    ///
    /// Panics when more than 128 parameters are declared.
    pub fn param_scalar(&mut self, name: &str) -> ParamRef {
        assert!(self.params.len() < 128, "kernel argument limit is 128");
        let index = self.params.len() as u8;
        self.params.push(Param::new(name, ParamKind::Scalar));
        ParamRef { index }
    }

    /// Declares a local-memory (stack) variable of `bytes_per_thread` bytes
    /// per thread and returns its slot for [`Operand::LocalBase`].
    pub fn local_var(&mut self, name: &str, bytes_per_thread: u64) -> u8 {
        let idx = self.locals.len() as u8;
        self.locals.push(LocalVar::new(name, bytes_per_thread));
        idx
    }

    /// Requests `bytes` of shared memory per workgroup.
    pub fn shared_mem(&mut self, bytes: u64) {
        self.shared_bytes = bytes;
    }

    /// Number of parameters declared so far (the builder panics past 128;
    /// generators that must not panic check this first).
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    // ---- operand shorthands -------------------------------------------

    /// `threadIdx.x` as an operand.
    pub fn thread_id(&self) -> Operand {
        Operand::Special(Special::ThreadId)
    }

    /// `blockIdx.x` as an operand.
    pub fn block_id(&self) -> Operand {
        Operand::Special(Special::BlockId)
    }

    /// `blockDim.x` as an operand.
    pub fn block_dim(&self) -> Operand {
        Operand::Special(Special::BlockDim)
    }

    /// `gridDim.x` as an operand.
    pub fn grid_dim(&self) -> Operand {
        Operand::Special(Special::GridDim)
    }

    /// Base address of a declared local variable.
    pub fn local_base(&self, var: u8) -> Operand {
        Operand::LocalBase(var)
    }

    // ---- address expressions ------------------------------------------

    /// Method C addressing: `base + offset`.
    pub fn base_offset(&self, base: impl Into<Operand>, offset: impl Into<Operand>) -> AddrExpr {
        AddrExpr::BaseOffset {
            base: base.into(),
            offset: offset.into(),
        }
    }

    /// Method B addressing: a full (tagged) address value.
    pub fn flat(&self, addr: impl Into<Operand>) -> AddrExpr {
        AddrExpr::Flat { addr: addr.into() }
    }

    /// Method A addressing: binding-table slot + offset (Intel BTS). The
    /// driver binds `bti` to the buffer parameter with the same index.
    pub fn binding_table(&self, bti: u8, offset: impl Into<Operand>) -> AddrExpr {
        AddrExpr::BindingTable {
            bti,
            offset: offset.into(),
        }
    }

    // ---- instruction emission ------------------------------------------

    fn fresh(&mut self) -> VReg {
        let r = VReg(self.next_reg);
        self.next_reg = self
            .next_reg
            .checked_add(1)
            .expect("register file exhausted");
        r
    }

    fn emit(&mut self, i: Instr) {
        let blk = &mut self.blocks[self.cur.0 as usize];
        assert!(
            blk.terminator().is_none(),
            "emitting into terminated block {}",
            self.cur
        );
        blk.push(i);
    }

    /// Copies `src` into a fresh register.
    pub fn mov(&mut self, src: impl Into<Operand>) -> VReg {
        let dst = self.fresh();
        self.emit(Instr::Mov {
            dst,
            src: src.into(),
        });
        dst
    }

    /// Re-assigns an existing register (used for loop induction variables).
    pub fn assign(&mut self, dst: VReg, src: impl Into<Operand>) {
        self.emit(Instr::Mov {
            dst,
            src: src.into(),
        });
    }

    /// Emits a binary operation into a fresh register.
    pub fn bin(&mut self, op: BinOp, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        let dst = self.fresh();
        self.emit(Instr::Bin {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Emits a unary operation into a fresh register.
    pub fn un(&mut self, op: UnOp, a: impl Into<Operand>) -> VReg {
        let dst = self.fresh();
        self.emit(Instr::Un {
            op,
            dst,
            a: a.into(),
        });
        dst
    }

    /// Emits a comparison producing 0/1 into a fresh register.
    pub fn cmp(&mut self, op: CmpOp, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        let dst = self.fresh();
        self.emit(Instr::Cmp {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Per-lane select into a fresh register.
    pub fn sel(
        &mut self,
        cond: impl Into<Operand>,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> VReg {
        let dst = self.fresh();
        self.emit(Instr::Sel {
            dst,
            cond: cond.into(),
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Loads into a fresh register.
    pub fn ld(&mut self, space: MemSpace, width: MemWidth, addr: AddrExpr) -> VReg {
        let dst = self.fresh();
        self.emit(Instr::Ld {
            dst,
            addr,
            space,
            width,
        });
        dst
    }

    /// Stores `src` to `addr`.
    pub fn st(
        &mut self,
        space: MemSpace,
        width: MemWidth,
        addr: AddrExpr,
        src: impl Into<Operand>,
    ) {
        self.emit(Instr::St {
            src: src.into(),
            addr,
            space,
            width,
        });
    }

    /// Atomic fetch-add; returns the register holding the pre-add value.
    pub fn atom_add(
        &mut self,
        space: MemSpace,
        width: MemWidth,
        addr: AddrExpr,
        src: impl Into<Operand>,
    ) -> VReg {
        let dst = self.fresh();
        self.emit(Instr::AtomAdd {
            dst,
            addr,
            space,
            width,
            src: src.into(),
        });
        dst
    }

    /// Workgroup barrier.
    pub fn bar(&mut self) {
        self.emit(Instr::Bar);
    }

    /// Device-side heap allocation.
    pub fn malloc(&mut self, size: impl Into<Operand>) -> VReg {
        let dst = self.fresh();
        self.emit(Instr::Malloc {
            dst,
            size: size.into(),
        });
        dst
    }

    /// Device-side heap free.
    pub fn free(&mut self, ptr: impl Into<Operand>) {
        self.emit(Instr::Free { ptr: ptr.into() });
    }

    /// Kernel exit.
    pub fn ret(&mut self) {
        self.emit(Instr::Ret);
    }

    // Convenience wrappers over `bin`/`cmp`.

    /// `a + b`.
    pub fn add(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Add, a, b)
    }
    /// `a - b`.
    pub fn sub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Sub, a, b)
    }
    /// `a * b`.
    pub fn mul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Mul, a, b)
    }
    /// `a / b` (signed; 0 on division by zero).
    pub fn div(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Div, a, b)
    }
    /// `a % b` (signed; 0 on division by zero).
    pub fn rem(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Rem, a, b)
    }
    /// `a & b`.
    pub fn and(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::And, a, b)
    }
    /// `a | b`.
    pub fn or(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Or, a, b)
    }
    /// `a ^ b`.
    pub fn xor(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Xor, a, b)
    }
    /// `a << b`.
    pub fn shl(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Shl, a, b)
    }
    /// `a >> b` (logical).
    pub fn shr(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Shr, a, b)
    }
    /// `min(a, b)` (signed).
    pub fn min(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Min, a, b)
    }
    /// `max(a, b)` (signed).
    pub fn max(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.bin(BinOp::Max, a, b)
    }
    /// `a < b` as 0/1.
    pub fn lt(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.cmp(CmpOp::Lt, a, b)
    }
    /// `a == b` as 0/1.
    pub fn eq(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.cmp(CmpOp::Eq, a, b)
    }
    /// `a >= b` as 0/1.
    pub fn ge(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> VReg {
        self.cmp(CmpOp::Ge, a, b)
    }

    /// `blockIdx.x * blockDim.x + threadIdx.x` — the canonical global
    /// workitem index (`get_global_id(0)`).
    pub fn global_thread_id(&mut self) -> VReg {
        let p = self.mul(self.block_id(), self.block_dim());
        self.add(p, self.thread_id())
    }

    // ---- control flow ---------------------------------------------------

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock::default());
        id
    }

    fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    fn jmp(&mut self, target: BlockId) {
        self.emit(Instr::Jmp { target });
    }

    fn bra(&mut self, cond: impl Into<Operand>, taken: BlockId, not_taken: BlockId) {
        self.emit(Instr::Bra {
            cond: cond.into(),
            taken,
            not_taken,
        });
    }

    /// Executes `then` only for lanes where `cond != 0`, reconverging after.
    pub fn if_then(&mut self, cond: impl Into<Operand>, then: impl FnOnce(&mut Self)) {
        let then_b = self.new_block();
        let join_b = self.new_block();
        self.bra(cond, then_b, join_b);
        self.switch_to(then_b);
        then(self);
        self.jmp(join_b);
        self.switch_to(join_b);
    }

    /// Two-armed divergent conditional, reconverging after both arms.
    pub fn if_then_else(
        &mut self,
        cond: impl Into<Operand>,
        then: impl FnOnce(&mut Self),
        otherwise: impl FnOnce(&mut Self),
    ) {
        let then_b = self.new_block();
        let else_b = self.new_block();
        let join_b = self.new_block();
        self.bra(cond, then_b, else_b);
        self.switch_to(then_b);
        then(self);
        self.jmp(join_b);
        self.switch_to(else_b);
        otherwise(self);
        self.jmp(join_b);
        self.switch_to(join_b);
    }

    /// Counted loop `for (i = start; i < end; i += step)`; the body closure
    /// receives the induction register. `end` is evaluated every iteration
    /// (it is usually a parameter or a loop-invariant register).
    ///
    /// # Panics
    ///
    /// Panics if `step == 0`.
    pub fn for_loop(
        &mut self,
        start: impl Into<Operand>,
        end: impl Into<Operand>,
        step: i64,
        body: impl FnOnce(&mut Self, VReg),
    ) {
        assert_ne!(step, 0, "zero loop step");
        let end = end.into();
        let iv = self.mov(start);
        let header = self.new_block();
        self.jmp(header);
        self.switch_to(header);
        let c = if step > 0 {
            self.cmp(CmpOp::Lt, iv, end)
        } else {
            self.cmp(CmpOp::Gt, iv, end)
        };
        let body_b = self.new_block();
        let exit_b = self.new_block();
        self.bra(c, body_b, exit_b);
        self.switch_to(body_b);
        body(self, iv);
        let next = self.add(iv, Operand::Imm(step));
        self.assign(iv, next);
        self.jmp(header);
        self.switch_to(exit_b);
    }

    /// `while cond()` loop: `cond` emits header code and returns the 0/1
    /// condition; `body` emits the loop body.
    pub fn while_loop(
        &mut self,
        cond: impl FnOnce(&mut Self) -> Operand,
        body: impl FnOnce(&mut Self),
    ) {
        let header = self.new_block();
        self.jmp(header);
        self.switch_to(header);
        let c = cond(self);
        let body_b = self.new_block();
        let exit_b = self.new_block();
        self.bra(c, body_b, exit_b);
        self.switch_to(body_b);
        body(self);
        self.jmp(header);
        self.switch_to(exit_b);
    }

    /// Finalizes and validates the kernel.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] when a block lacks a terminator, a branch
    /// targets a missing block, or an operand references an undeclared
    /// parameter or local variable.
    pub fn finish(self) -> Result<Kernel, ValidateError> {
        let kernel = Kernel::from_parts(
            self.name,
            self.params,
            self.locals,
            self.blocks,
            self.next_reg,
            self.shared_bytes,
        );
        validate(&kernel)?;
        Ok(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_kernel() {
        let mut b = KernelBuilder::new("k");
        let a = b.param_buffer("a", false);
        let tid = b.global_thread_id();
        let off = b.shl(tid, Operand::Imm(2));
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(a, off),
            Operand::Imm(7),
        );
        b.ret();
        let k = b.finish().unwrap();
        assert_eq!(k.blocks().len(), 1);
        assert_eq!(k.static_instr_count(), 5);
    }

    #[test]
    fn if_then_creates_diamond() {
        let mut b = KernelBuilder::new("k");
        let tid = b.mov(b.thread_id());
        let c = b.lt(tid, Operand::Imm(16));
        b.if_then(c, |b| {
            let _ = b.add(tid, Operand::Imm(1));
        });
        b.ret();
        let k = b.finish().unwrap();
        assert_eq!(k.blocks().len(), 3);
    }

    #[test]
    fn for_loop_shape() {
        let mut b = KernelBuilder::new("k");
        let n = b.param_scalar("n");
        b.for_loop(Operand::Imm(0), n, 1, |b, i| {
            let _ = b.mul(i, i);
        });
        b.ret();
        let k = b.finish().unwrap();
        // entry, header, body, exit
        assert_eq!(k.blocks().len(), 4);
    }

    #[test]
    #[should_panic(expected = "terminated block")]
    fn emitting_after_terminator_panics() {
        let mut b = KernelBuilder::new("k");
        b.ret();
        let _ = b.mov(Operand::Imm(0));
    }

    #[test]
    fn while_loop_validates() {
        let mut b = KernelBuilder::new("k");
        let x = b.mov(Operand::Imm(10));
        b.while_loop(
            |b| Operand::Reg(b.cmp(CmpOp::Gt, x, Operand::Imm(0))),
            |b| {
                let d = b.sub(x, Operand::Imm(1));
                b.assign(x, d);
            },
        );
        b.ret();
        assert!(b.finish().is_ok());
    }
}
