//! Binary-attached bounds metadata: the per-site check plan derived from
//! the compiler's Bounds-Analysis Table (paper §5.3, Fig. 9 steps ①–③).
//!
//! The full BAT (with parameter pointer classes and static-violation
//! reports) lives in the compiler crate; this module holds only the part
//! that the *hardware path* consumes: which memory-instruction sites skip
//! runtime checking (Type 1), which check against the RBT (Type 2), and
//! which use the embedded-size fast path (Type 3).

use crate::instr::BlockId;
use std::collections::HashMap;

/// The bounds-check decision for one memory-instruction site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SiteCheck {
    /// Statically proven in bounds → Type 1 pointer, no runtime check.
    Static,
    /// Needs a runtime RBT-indexed check → Type 2 pointer.
    #[default]
    Runtime,
    /// Base+offset addressing with the buffer size embedded in the pointer
    /// → Type 3, checked without an RBT access.
    SizeEmbedded,
}

/// Proof metadata attached to a certificate-elided site: the virtual
/// address window `[lo, hi)` the driver discharged the compiler's
/// [`SiteProof`] to. Hardware that skips the site's check can count the
/// skip as *certified* (attributable to a proof, not blind trust), and
/// the soundness auditor cross-checks observed addresses against exactly
/// this window. The symbolic certificate (`SiteProof`) lives in the
/// compiler crate; this is its discharged, VA-space residue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteCert {
    /// First virtual address the site may touch (inclusive).
    pub lo: u64,
    /// One past the last virtual address the site may touch (exclusive).
    pub hi: u64,
}

/// Per-site check decisions for one kernel. Sites not present fall back to
/// [`SiteCheck::Runtime`] (checking is opt-out, never opt-in, so an
/// incomplete table fails safe).
#[derive(Debug, Clone, Default)]
pub struct CheckPlan {
    sites: HashMap<(BlockId, usize), SiteCheck>,
    certs: HashMap<(BlockId, usize), SiteCert>,
}

impl CheckPlan {
    /// An empty plan: every site is checked at runtime.
    pub fn all_runtime() -> Self {
        CheckPlan::default()
    }

    /// Records the decision for the instruction at `site`.
    pub fn set(&mut self, site: (BlockId, usize), check: SiteCheck) {
        self.sites.insert(site, check);
    }

    /// The decision for `site`.
    pub fn get(&self, site: (BlockId, usize)) -> SiteCheck {
        self.sites.get(&site).copied().unwrap_or_default()
    }

    /// Number of sites decided as `Static`.
    pub fn static_sites(&self) -> usize {
        self.sites
            .values()
            .filter(|c| **c == SiteCheck::Static)
            .count()
    }

    /// Total recorded sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when no site was recorded.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Iterates over recorded `(site, decision)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = ((BlockId, usize), SiteCheck)> + '_ {
        self.sites.iter().map(|(k, v)| (*k, *v))
    }

    /// Attaches a discharged proof certificate to `site`.
    pub fn set_cert(&mut self, site: (BlockId, usize), cert: SiteCert) {
        self.certs.insert(site, cert);
    }

    /// The discharged certificate for `site`, if one was attached.
    pub fn cert(&self, site: (BlockId, usize)) -> Option<SiteCert> {
        self.certs.get(&site).copied()
    }

    /// True when `site`'s decision is backed by a discharged certificate.
    pub fn certified(&self, site: (BlockId, usize)) -> bool {
        self.certs.contains_key(&site)
    }

    /// Number of certificate-backed sites.
    pub fn certified_sites(&self) -> usize {
        self.certs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_fail_safe_to_runtime() {
        let p = CheckPlan::all_runtime();
        assert_eq!(p.get((BlockId(3), 9)), SiteCheck::Runtime);
        assert!(p.is_empty());
    }

    #[test]
    fn decisions_round_trip() {
        let mut p = CheckPlan::all_runtime();
        p.set((BlockId(0), 1), SiteCheck::Static);
        p.set((BlockId(2), 0), SiteCheck::SizeEmbedded);
        assert_eq!(p.get((BlockId(0), 1)), SiteCheck::Static);
        assert_eq!(p.get((BlockId(2), 0)), SiteCheck::SizeEmbedded);
        assert_eq!(p.static_sites(), 1);
        assert_eq!(p.len(), 2);
        assert_eq!(p.iter().count(), 2);
    }
}
