//! GPUShield's hardware: the paper's primary contribution.
//!
//! This crate implements the Bounds-Checking Unit ([`Bcu`]) of §5.5 — the
//! per-core structure next to the LSU comprising the [`L1RCache`] (small
//! FIFO), the [`L2RCache`] (64-entry fully associative, kernel-ID tagged),
//! ID decryption, and warp-range comparison logic — together with the
//! fault/error-logging behaviour of §5.5.2 and the Fig. 12 stall model.
//!
//! The BCU plugs into the simulator through the
//! [`gpushield_sim::MemGuard`] trait and reads the Region Bounds Table the
//! driver placed in device memory through the translation-bypass path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bcu;
mod rcache;

pub use bcu::{Bcu, BcuConfig, BcuStats, ViolationKind, ViolationRecord};
pub use rcache::{L1RCache, L2RCache, RTag};
