//! The Bounds-Checking Unit (paper §5.5): the per-core hardware that sits
//! next to the LSU, decrypts pointer-embedded buffer IDs, looks bounds up
//! in the RCache hierarchy (falling back to the in-memory RBT), and
//! compares the warp's gathered min/max address range against them.

use crate::rcache::{L1RCache, L2RCache};
use gpushield_driver::{decrypt_id, read_entry, BoundsEntry, ShieldSetup};
use gpushield_isa::{BlockId, PtrClass, SiteCheck};
use gpushield_mem::VirtualMemorySpace;
use gpushield_sim::{CheckPath, CoreGuard, GuardCheck, GuardVerdict, MemAccess, MemGuard};
use std::collections::HashMap;
use std::fmt;

/// BCU hardware configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BcuConfig {
    /// L1 RCache entries per core (default 4).
    pub l1_entries: usize,
    /// L2 RCache entries per core (default 64).
    pub l2_entries: usize,
    /// L1 RCache access latency in cycles (default 1; Fig. 14 also
    /// evaluates 2).
    pub l1_latency: u64,
    /// L2 RCache access latency in cycles (default 3; Figs. 14/17 also
    /// evaluate 5).
    pub l2_latency: u64,
    /// Visible stall charged when bounds must be fetched from the RBT in
    /// memory and the data access itself hit the L1 Dcache (otherwise the
    /// fetch overlaps the miss/TLB-walk latency, §5.5).
    pub rbt_fetch_penalty: u64,
    /// LSU pipeline depth available to hide checking (Fig. 12's four
    /// stages).
    pub lsu_overlap: u64,
    /// `true`: raise a precise exception (abort). `false`: log, return
    /// zero for loads, drop stores (§5.5.2).
    pub precise_faults: bool,
    /// Ablation of §5.5.1's first technique: check every active lane
    /// individually instead of the gathered warp min/max range. The BCU
    /// then performs `active_lanes` serialized comparisons per access, and
    /// the exposed stall grows accordingly.
    pub per_thread_checks: bool,
    /// Multi-tenant hardening: reject Type 1 (unprotected) and Type 3
    /// (size-embedded) pointers at sites the compiler classified as
    /// `Runtime`. Under a serving configuration (analysis off, Type 3
    /// off) every legitimate runtime-checked pointer is Region-class, so
    /// a differently-classed pointer at such a site can only be a forged
    /// value smuggled in through data (e.g. a raw victim VA loaded from
    /// the attacker's own buffer). Off by default: single-tenant configs
    /// legitimately mix classes at runtime sites.
    pub strict_runtime_tags: bool,
}

impl Default for BcuConfig {
    fn default() -> Self {
        BcuConfig {
            l1_entries: 4,
            l2_entries: 64,
            l1_latency: 1,
            l2_latency: 3,
            rbt_fetch_penalty: 50,
            lsu_overlap: 4,
            precise_faults: true,
            per_thread_checks: false,
            strict_runtime_tags: false,
        }
    }
}

/// Why an access was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Address range outside the region's bounds.
    OutOfBounds,
    /// Store through a read-only region's pointer.
    ReadOnly,
    /// Decrypted ID hit an invalid RBT entry or another kernel's entry —
    /// the signature of a forged or corrupted pointer (§6.1).
    BadRegion,
    /// The kernel was never registered with the BCU (driver bug or attack).
    UnknownKernel,
    /// A non-Region pointer reached a site the compiler classified as
    /// `Runtime` while [`BcuConfig::strict_runtime_tags`] is on — the
    /// signature of a pointer forged wholesale from data.
    ForgedPointer,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::OutOfBounds => "out-of-bounds access",
            ViolationKind::ReadOnly => "write to read-only region",
            ViolationKind::BadRegion => "invalid or forged region ID",
            ViolationKind::UnknownKernel => "unregistered kernel",
            ViolationKind::ForgedPointer => "forged pointer class at runtime site",
        };
        f.write_str(s)
    }
}

/// One logged violation (the error-logging path of §5.5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViolationRecord {
    /// Kernel that violated.
    pub kernel_id: u16,
    /// Instruction site.
    pub site: (BlockId, usize),
    /// Offending warp address range (min, exclusive max).
    pub range: (u64, u64),
    /// Store or load.
    pub is_store: bool,
    /// Category.
    pub kind: ViolationKind,
}

/// Aggregate BCU statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BcuStats {
    /// Runtime checks performed (warp granularity).
    pub checks: u64,
    /// Checks satisfied by the L1 RCache.
    pub l1_hits: u64,
    /// Checks satisfied by the L2 RCache.
    pub l2_hits: u64,
    /// Checks that fetched bounds from the in-memory RBT.
    pub rbt_fetches: u64,
    /// Type 3 checks (no RCache involvement).
    pub type3_checks: u64,
    /// Accesses through unprotected (Type 1) pointers observed.
    pub unprotected: u64,
    /// Violations detected.
    pub violations: u64,
    /// Total visible stall cycles charged.
    pub stall_cycles: u64,
    /// RCache fills (either level) that displaced a resident entry.
    pub rcache_evictions: u64,
    /// Displacements where victim and newcomer belonged to different
    /// kernels — the cross-tenant contention signal under co-location.
    pub cross_kernel_evictions: u64,
}

impl BcuStats {
    /// L1 RCache hit rate over RBT-indexed checks, in `[0, 1]` (the Figs.
    /// 15/16 quantity); 1.0 when no such check occurred.
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l2_hits + self.rbt_fetches;
        if total == 0 {
            1.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }
}

struct CoreBcu {
    l1: L1RCache,
    l2: L2RCache,
}

/// Per-core observation inbox filled by a [`BcuShard`] during a parallel
/// phase and folded into the global statistics/violation log by
/// [`MemGuard::merge_forked`] in canonical core order.
#[derive(Default)]
struct CorePending {
    stats: BcuStats,
    violations: Vec<ViolationRecord>,
}

impl BcuStats {
    /// Adds another statistics block field-by-field.
    fn absorb(&mut self, o: &BcuStats) {
        self.checks += o.checks;
        self.l1_hits += o.l1_hits;
        self.l2_hits += o.l2_hits;
        self.rbt_fetches += o.rbt_fetches;
        self.type3_checks += o.type3_checks;
        self.unprotected += o.unprotected;
        self.violations += o.violations;
        self.stall_cycles += o.stall_cycles;
        self.rcache_evictions += o.rcache_evictions;
        self.cross_kernel_evictions += o.cross_kernel_evictions;
    }
}

/// The GPUShield bounds-checking unit for a whole GPU (one RCache pair per
/// core). Implements the simulator's [`MemGuard`] hook.
///
/// # Example
///
/// ```
/// use gpushield_core::{Bcu, BcuConfig};
/// use gpushield_driver::{encrypt_id, write_entry, BoundsEntry, ShieldSetup};
/// use gpushield_isa::{BlockId, MemSpace, SiteCheck, TaggedPtr};
/// use gpushield_mem::{AllocPolicy, VirtualMemorySpace};
/// use gpushield_sim::{GuardVerdict, MemAccess, MemGuard};
///
/// // Device memory with an RBT holding one 256-byte region.
/// let mut vm = VirtualMemorySpace::new();
/// let rbt = vm.alloc(gpushield_driver::RBT_BYTES, AllocPolicy::Isolated)?;
/// let buf = vm.alloc(256, AllocPolicy::Device512)?;
/// let setup = ShieldSetup { kernel_id: 1, rbt_base: rbt.va, key: 0xABCD };
/// write_entry(&mut vm, rbt.va, 100, &BoundsEntry {
///     valid: true, readonly: false, kernel_id: 1, base: buf.va, size: 256,
/// })?;
///
/// let mut bcu = Bcu::new(BcuConfig::default(), 1);
/// bcu.register_kernel(setup);
/// let access = MemAccess {
///     core: 0, kernel_id: 1, is_store: true, space: MemSpace::Global,
///     pointer: TaggedPtr::with_region_id(buf.va, encrypt_id(100, setup.key)),
///     site: (BlockId(0), 0), range: (buf.va, buf.va + 4),
///     site_check: SiteCheck::Runtime, transactions: 1, active_lanes: 32,
///     l1d_all_hit: true,
/// };
/// assert_eq!(bcu.check(&access, &vm).verdict, GuardVerdict::Allow);
/// let oob = MemAccess { range: (buf.va + 256, buf.va + 260), ..access };
/// assert_eq!(bcu.check(&oob, &vm).verdict, GuardVerdict::Fault);
/// # Ok::<(), gpushield_mem::MemFault>(())
/// ```
pub struct Bcu {
    cfg: BcuConfig,
    cores: Vec<CoreBcu>,
    kernels: HashMap<u16, ShieldSetup>,
    stats: BcuStats,
    violations: Vec<ViolationRecord>,
    /// One inbox per core for forked-shard observations (empty outside
    /// parallel runs).
    pending: Vec<CorePending>,
}

impl Bcu {
    /// Creates a BCU with one RCache pair per core.
    pub fn new(cfg: BcuConfig, num_cores: usize) -> Self {
        Bcu {
            cfg,
            cores: (0..num_cores)
                .map(|_| CoreBcu {
                    l1: L1RCache::new(cfg.l1_entries),
                    l2: L2RCache::new(cfg.l2_entries),
                })
                .collect(),
            kernels: HashMap::new(),
            stats: BcuStats::default(),
            violations: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Registers a kernel's RBT address and decryption key in every core
    /// (§5.4: "the driver stores the physical address of RBT for all cores
    /// the kernel will be running on").
    pub fn register_kernel(&mut self, setup: ShieldSetup) {
        self.kernels.insert(setup.kernel_id, setup);
    }

    /// Pre-fills every core's L2 RCache with one region's bounds entry,
    /// straight from the RBT the driver just wrote (§5.4 launch-time
    /// metadata setup left cache-resident). Used on the certified-elision
    /// path: eliding a region's provably-safe early accesses defers its
    /// first *checked* access past the cold-start phase, which would
    /// expose RBT-fetch latency that an uncertified run overlaps with
    /// cold data misses. Priming is metadata setup, not a check, so it
    /// touches no statistics counters.
    pub fn prime_region(&mut self, kernel_id: u16, id: u16, vm: &VirtualMemorySpace) {
        let Some(setup) = self.kernels.get(&kernel_id).copied() else {
            return;
        };
        let Ok(entry) = read_entry(vm, setup.rbt_base, id) else {
            return;
        };
        if !entry.valid {
            return;
        }
        let tag = (kernel_id, id);
        for core in &mut self.cores {
            core.l2.fill(tag, entry);
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BcuStats {
        self.stats
    }

    /// Clears statistics and the violation log (keeps registrations and
    /// cache contents).
    pub fn reset_stats(&mut self) {
        self.stats = BcuStats::default();
        self.violations.clear();
    }

    /// The violation log (what the driver reports at kernel end or streams
    /// to the host through an SVM buffer, §5.5.2).
    pub fn violations(&self) -> &[ViolationRecord] {
        &self.violations
    }

    /// The configuration in use.
    pub fn config(&self) -> BcuConfig {
        self.cfg
    }
}

/// Logs a violation into the given sinks and builds the rejecting check
/// result. Free function so the serial guard and per-core shards share it.
fn violate_into(
    cfg: &BcuConfig,
    stats: &mut BcuStats,
    violations: &mut Vec<ViolationRecord>,
    access: &MemAccess,
    kind: ViolationKind,
    stall: u64,
    path: CheckPath,
) -> GuardCheck {
    stats.violations += 1;
    if violations.len() < 4096 {
        violations.push(ViolationRecord {
            kernel_id: access.kernel_id,
            site: access.site,
            range: access.range,
            is_store: access.is_store,
            kind,
        });
    }
    GuardCheck {
        verdict: if cfg.precise_faults {
            GuardVerdict::Fault
        } else {
            GuardVerdict::Squash
        },
        stall_cycles: stall,
        path,
    }
}

/// The Fig. 12 stall-visibility rule: checking overlaps the LSU
/// pipeline; only a single-transaction access that hits the L1 Dcache
/// exposes the part of the BCU path that exceeds the overlap budget.
///
/// In the per-thread ablation the comparator is occupied for one cycle
/// per active lane, so everything beyond the overlap budget becomes
/// visible regardless of how the data access fared.
fn visible_stall(cfg: &BcuConfig, access: &MemAccess, bcu_path: u64) -> u64 {
    if cfg.per_thread_checks {
        let path = bcu_path + access.active_lanes as u64;
        return path.saturating_sub(cfg.lsu_overlap.saturating_sub(1));
    }
    if access.transactions == 1 && access.l1d_all_hit {
        bcu_path.saturating_sub(cfg.lsu_overlap.saturating_sub(1))
    } else {
        0
    }
}

/// One warp-level bounds check against a single core's RCache pair.
///
/// This is the whole §5.5 algorithm; [`Bcu::check`] routes here with the
/// global statistic sinks, a [`BcuShard`] with its per-core inbox. The
/// result depends only on the core's own RCache history, the registration
/// table, and device memory — never on other cores — which is what makes
/// the forked-shard execution order-independent.
fn check_core(
    cfg: &BcuConfig,
    kernels: &HashMap<u16, ShieldSetup>,
    core: &mut CoreBcu,
    stats: &mut BcuStats,
    violations: &mut Vec<ViolationRecord>,
    access: &MemAccess,
    vm: &VirtualMemorySpace,
) -> GuardCheck {
    match access.pointer.class() {
        PtrClass::Unprotected => {
            if cfg.strict_runtime_tags && access.site_check == SiteCheck::Runtime {
                // A runtime site should only ever see Region pointers
                // under the serving config; an untagged value here was
                // forged from data, not issued by the driver.
                stats.checks += 1;
                return violate_into(
                    cfg,
                    stats,
                    violations,
                    access,
                    ViolationKind::ForgedPointer,
                    0,
                    CheckPath::Unchecked,
                );
            }
            // Type 1: static analysis already proved the access (or the
            // shield never tagged this pointer). No work, no stall.
            stats.unprotected += 1;
            GuardCheck::allow_free()
        }
        PtrClass::SizeEmbedded => {
            if cfg.strict_runtime_tags && access.site_check == SiteCheck::Runtime {
                // The attacker controls the embedded log2 size, so a
                // crafted Type 3 value would bound-check against bounds
                // of its own choosing — reject the class outright.
                stats.checks += 1;
                return violate_into(
                    cfg,
                    stats,
                    violations,
                    access,
                    ViolationKind::ForgedPointer,
                    0,
                    CheckPath::Unchecked,
                );
            }
            // Type 3: compare against the pointer-embedded log2 size —
            // no RCache, no RBT (§5.3.3).
            stats.checks += 1;
            stats.type3_checks += 1;
            let base = access.pointer.va();
            let log2 = u32::from(access.pointer.info()).min(46);
            let size = 1u64 << log2;
            let (lo, hi) = access.range;
            if lo >= base && hi <= base + size {
                GuardCheck {
                    verdict: GuardVerdict::Allow,
                    stall_cycles: 0,
                    path: CheckPath::SizeEmbedded,
                }
            } else {
                violate_into(
                    cfg,
                    stats,
                    violations,
                    access,
                    ViolationKind::OutOfBounds,
                    0,
                    CheckPath::SizeEmbedded,
                )
            }
        }
        PtrClass::Region => {
            stats.checks += 1;
            let Some(setup) = kernels.get(&access.kernel_id).copied() else {
                // No registration means no metadata was consulted.
                return violate_into(
                    cfg,
                    stats,
                    violations,
                    access,
                    ViolationKind::UnknownKernel,
                    0,
                    CheckPath::Unchecked,
                );
            };
            let id = decrypt_id(access.pointer.info(), setup.key);
            let tag = (access.kernel_id, id);
            let (entry, bcu_path, path) = if let Some(e) = core.l1.probe(tag) {
                stats.l1_hits += 1;
                // gather + L1 RCache + compare.
                (e, 1 + cfg.l1_latency + 1, CheckPath::L1RCache)
            } else if let Some(e) = core.l2.probe(tag) {
                stats.l2_hits += 1;
                if let Some(victim) = core.l1.fill(tag, e) {
                    stats.rcache_evictions += 1;
                    if victim.0 != tag.0 {
                        stats.cross_kernel_evictions += 1;
                    }
                }
                (
                    e,
                    1 + cfg.l1_latency + cfg.l2_latency + 1,
                    CheckPath::L2RCache,
                )
            } else {
                // Fetch from the RBT in device memory through the
                // translation-bypass path (§5.4). The latency largely
                // overlaps TLB misses (Fig. 11 argument); the visible
                // part is a fixed penalty when the data access was an
                // L1 hit.
                stats.rbt_fetches += 1;
                let e = read_entry(vm, setup.rbt_base, id).unwrap_or(BoundsEntry {
                    valid: false,
                    ..BoundsEntry::default()
                });
                for victim in [core.l2.fill(tag, e), core.l1.fill(tag, e)]
                    .into_iter()
                    .flatten()
                {
                    stats.rcache_evictions += 1;
                    if victim.0 != tag.0 {
                        stats.cross_kernel_evictions += 1;
                    }
                }
                (
                    e,
                    1 + cfg.l1_latency + cfg.l2_latency + cfg.rbt_fetch_penalty,
                    CheckPath::RbtFetch,
                )
            };
            let stall = visible_stall(cfg, access, bcu_path);
            if !entry.valid || entry.kernel_id != access.kernel_id {
                return violate_into(
                    cfg,
                    stats,
                    violations,
                    access,
                    ViolationKind::BadRegion,
                    stall,
                    path,
                );
            }
            if entry.readonly && access.is_store {
                return violate_into(
                    cfg,
                    stats,
                    violations,
                    access,
                    ViolationKind::ReadOnly,
                    stall,
                    path,
                );
            }
            let (lo, hi) = access.range;
            if !entry.in_bounds(lo, hi) {
                return violate_into(
                    cfg,
                    stats,
                    violations,
                    access,
                    ViolationKind::OutOfBounds,
                    stall,
                    path,
                );
            }
            stats.stall_cycles += stall;
            GuardCheck {
                verdict: GuardVerdict::Allow,
                stall_cycles: stall,
                path,
            }
        }
    }
}

/// One core's slice of the BCU, checked from a worker thread during a
/// parallel phase. Holds the core's RCache pair mutably plus a private
/// observation inbox; the registration table is shared read-only.
struct BcuShard<'a> {
    cfg: BcuConfig,
    kernels: &'a HashMap<u16, ShieldSetup>,
    core: &'a mut CoreBcu,
    pending: &'a mut CorePending,
}

impl CoreGuard for BcuShard<'_> {
    fn check(&mut self, access: &MemAccess, vm: &VirtualMemorySpace) -> GuardCheck {
        check_core(
            &self.cfg,
            self.kernels,
            self.core,
            &mut self.pending.stats,
            &mut self.pending.violations,
            access,
            vm,
        )
    }

    fn on_kernel_end(&mut self, kernel_id: u16) {
        self.core.l1.flush_kernel(kernel_id);
        self.core.l2.flush_kernel(kernel_id);
    }
}

impl MemGuard for Bcu {
    fn check(&mut self, access: &MemAccess, vm: &VirtualMemorySpace) -> GuardCheck {
        check_core(
            &self.cfg,
            &self.kernels,
            &mut self.cores[access.core],
            &mut self.stats,
            &mut self.violations,
            access,
            vm,
        )
    }

    fn on_kernel_end(&mut self, kernel_id: u16) {
        for core in &mut self.cores {
            core.l1.flush_kernel(kernel_id);
            core.l2.flush_kernel(kernel_id);
        }
    }

    fn inject_metadata_fault(&mut self, core: usize, entropy: u64) -> bool {
        if self.cores.is_empty() {
            return false;
        }
        let n = self.cores.len();
        let c = &mut self.cores[core % n];
        // Prefer the L1 (its entries are hotter, so the corruption is more
        // likely to be consumed before eviction); fall back to the L2.
        c.l1.poison(entropy) || c.l2.poison(entropy)
    }

    fn name(&self) -> &str {
        "gpushield"
    }

    fn supports_fork(&self, num_cores: usize) -> bool {
        num_cores == self.cores.len()
    }

    fn fork_cores(&mut self, num_cores: usize) -> Option<Vec<Box<dyn CoreGuard + Send + '_>>> {
        if num_cores != self.cores.len() {
            return None;
        }
        if self.pending.len() != num_cores {
            self.pending.clear();
            self.pending.resize_with(num_cores, CorePending::default);
        }
        let cfg = self.cfg;
        let kernels = &self.kernels;
        Some(
            self.cores
                .iter_mut()
                .zip(self.pending.iter_mut())
                .map(|(core, pending)| {
                    Box::new(BcuShard {
                        cfg,
                        kernels,
                        core,
                        pending,
                    }) as Box<dyn CoreGuard + Send + '_>
                })
                .collect(),
        )
    }

    fn merge_forked(&mut self) {
        for p in &mut self.pending {
            self.stats.absorb(&p.stats);
            p.stats = BcuStats::default();
            for v in p.violations.drain(..) {
                if self.violations.len() < 4096 {
                    self.violations.push(v);
                }
            }
        }
    }
}

impl Bcu {
    /// Context switch (§6.2 point 3): both RCache levels flush entirely;
    /// the next kernel's RBT misses amortize with its TLB misses.
    pub fn on_context_switch(&mut self) {
        for core in &mut self.cores {
            core.l1.flush_all();
            core.l2.flush_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpushield_driver::{encrypt_id, write_entry};
    use gpushield_isa::{MemSpace, SiteCheck, TaggedPtr};
    use gpushield_mem::AllocPolicy;

    fn setup_env() -> (VirtualMemorySpace, ShieldSetup, u16, u64) {
        let mut vm = VirtualMemorySpace::new();
        let rbt = vm
            .alloc(gpushield_driver::RBT_BYTES, AllocPolicy::Isolated)
            .unwrap();
        let buf = vm.alloc(256, AllocPolicy::Device512).unwrap();
        let setup = ShieldSetup {
            kernel_id: 5,
            rbt_base: rbt.va,
            key: 0xFEED_F00D_1234_5678,
        };
        let id: u16 = 0x0AB;
        write_entry(
            &mut vm,
            rbt.va,
            id,
            &BoundsEntry {
                valid: true,
                readonly: false,
                kernel_id: 5,
                base: buf.va,
                size: 256,
            },
        )
        .unwrap();
        (vm, setup, id, buf.va)
    }

    fn access(ptr: TaggedPtr, range: (u64, u64), is_store: bool) -> MemAccess {
        MemAccess {
            core: 0,
            kernel_id: 5,
            is_store,
            space: MemSpace::Global,
            pointer: ptr,
            site: (BlockId(0), 0),
            range,
            site_check: SiteCheck::Runtime,
            transactions: 1,
            active_lanes: 1,
            l1d_all_hit: true,
        }
    }

    #[test]
    fn in_bounds_access_allowed_and_cached() {
        let (vm, setup, id, base) = setup_env();
        let mut bcu = Bcu::new(BcuConfig::default(), 1);
        bcu.register_kernel(setup);
        let ptr = TaggedPtr::with_region_id(base, encrypt_id(id, setup.key));
        // First access: RBT fetch.
        let r1 = bcu.check(&access(ptr, (base, base + 4), false), &vm);
        assert_eq!(r1.verdict, GuardVerdict::Allow);
        // Second: L1 RCache hit, zero stall under the default latencies.
        let r2 = bcu.check(&access(ptr, (base + 4, base + 8), false), &vm);
        assert_eq!(r2.verdict, GuardVerdict::Allow);
        assert_eq!(r2.stall_cycles, 0);
        let s = bcu.stats();
        assert_eq!(s.rbt_fetches, 1);
        assert_eq!(s.l1_hits, 1);
        assert_eq!(s.violations, 0);
    }

    #[test]
    fn out_of_bounds_faults_precisely() {
        let (vm, setup, id, base) = setup_env();
        let mut bcu = Bcu::new(BcuConfig::default(), 1);
        bcu.register_kernel(setup);
        let ptr = TaggedPtr::with_region_id(base, encrypt_id(id, setup.key));
        let r = bcu.check(&access(ptr, (base + 256, base + 260), true), &vm);
        assert_eq!(r.verdict, GuardVerdict::Fault);
        assert_eq!(bcu.violations()[0].kind, ViolationKind::OutOfBounds);
    }

    #[test]
    fn squash_mode_logs_without_fault() {
        let (vm, setup, id, base) = setup_env();
        let cfg = BcuConfig {
            precise_faults: false,
            ..BcuConfig::default()
        };
        let mut bcu = Bcu::new(cfg, 1);
        bcu.register_kernel(setup);
        let ptr = TaggedPtr::with_region_id(base, encrypt_id(id, setup.key));
        let r = bcu.check(&access(ptr, (base + 300, base + 304), true), &vm);
        assert_eq!(r.verdict, GuardVerdict::Squash);
        assert_eq!(bcu.violations().len(), 1);
    }

    #[test]
    fn forged_id_is_rejected() {
        let (vm, setup, id, base) = setup_env();
        let mut bcu = Bcu::new(BcuConfig::default(), 1);
        bcu.register_kernel(setup);
        // Attacker writes a plausible-looking *plaintext* id into the
        // pointer without knowing the key: decryption scrambles it.
        let forged = TaggedPtr::with_region_id(base, id);
        let r = bcu.check(&access(forged, (base, base + 4), true), &vm);
        // Either the decrypted id hits an invalid entry (BadRegion) or, with
        // astronomically small probability, a valid one; with this key it
        // is invalid.
        assert_eq!(r.verdict, GuardVerdict::Fault);
        assert_eq!(bcu.violations()[0].kind, ViolationKind::BadRegion);
    }

    #[test]
    fn readonly_enforced_for_stores_only() {
        let (mut vm, setup, _, _) = setup_env();
        let ro_buf = vm.alloc(64, AllocPolicy::Device512).unwrap();
        let ro_id = 0x0CD;
        write_entry(
            &mut vm,
            setup.rbt_base,
            ro_id,
            &BoundsEntry {
                valid: true,
                readonly: true,
                kernel_id: 5,
                base: ro_buf.va,
                size: 64,
            },
        )
        .unwrap();
        let mut bcu = Bcu::new(BcuConfig::default(), 1);
        bcu.register_kernel(setup);
        let ptr = TaggedPtr::with_region_id(ro_buf.va, encrypt_id(ro_id, setup.key));
        let load = bcu.check(&access(ptr, (ro_buf.va, ro_buf.va + 4), false), &vm);
        assert_eq!(load.verdict, GuardVerdict::Allow);
        let store = bcu.check(&access(ptr, (ro_buf.va, ro_buf.va + 4), true), &vm);
        assert_eq!(store.verdict, GuardVerdict::Fault);
        assert_eq!(bcu.violations()[0].kind, ViolationKind::ReadOnly);
    }

    #[test]
    fn type3_checks_without_rcache() {
        let (vm, _, _, _) = setup_env();
        let mut bcu = Bcu::new(BcuConfig::default(), 1);
        let base = 0x10_0000;
        let ptr = TaggedPtr::with_log2_size(base, 9); // 512B
        let ok = bcu.check(&access(ptr, (base, base + 512), false), &vm);
        assert_eq!(ok.verdict, GuardVerdict::Allow);
        let bad = bcu.check(&access(ptr, (base + 512, base + 516), true), &vm);
        assert_eq!(bad.verdict, GuardVerdict::Fault);
        let under = bcu.check(&access(ptr, (base - 4, base), true), &vm);
        assert_eq!(under.verdict, GuardVerdict::Fault);
        assert_eq!(bcu.stats().type3_checks, 3);
        assert_eq!(bcu.stats().rbt_fetches, 0);
    }

    #[test]
    fn stall_rule_matches_fig12() {
        let (vm, setup, id, base) = setup_env();
        let mut bcu = Bcu::new(BcuConfig::default(), 1);
        bcu.register_kernel(setup);
        let ptr = TaggedPtr::with_region_id(base, encrypt_id(id, setup.key));
        // Prime the L2 (first access fetches from RBT).
        let _ = bcu.check(&access(ptr, (base, base + 4), false), &vm);
        bcu.on_kernel_end(5); // flush both levels
        let _ = bcu.check(&access(ptr, (base, base + 4), false), &vm);
        // Now resident in both; evict from L1 by filling it with others.
        // Easier: flush L1 only is not exposed — verify L1-hit (0 stall)
        // and multi-transaction hiding instead.
        let hit = bcu.check(&access(ptr, (base, base + 4), false), &vm);
        assert_eq!(hit.stall_cycles, 0, "L1 RCache hit is fully hidden");
        let mut multi = access(ptr, (base, base + 4), false);
        multi.transactions = 4;
        multi.l1d_all_hit = false;
        let hidden = bcu.check(&multi, &vm);
        assert_eq!(hidden.stall_cycles, 0, "multi-transaction hides the BCU");
    }

    #[test]
    fn two_cycle_l1_exposes_one_bubble() {
        let (vm, setup, id, base) = setup_env();
        let cfg = BcuConfig {
            l1_latency: 2,
            l2_latency: 5,
            ..BcuConfig::default()
        };
        let mut bcu = Bcu::new(cfg, 1);
        bcu.register_kernel(setup);
        let ptr = TaggedPtr::with_region_id(base, encrypt_id(id, setup.key));
        let _ = bcu.check(&access(ptr, (base, base + 4), false), &vm); // prime
        let hit = bcu.check(&access(ptr, (base, base + 4), false), &vm);
        // gather(1) + L1(2) + compare(1) = 4 vs overlap budget 3 → 1 bubble.
        assert_eq!(hit.stall_cycles, 1);
    }

    #[test]
    fn unregistered_kernel_fails_safe() {
        let (vm, _, id, base) = setup_env();
        let mut bcu = Bcu::new(BcuConfig::default(), 1);
        let ptr = TaggedPtr::with_region_id(base, id);
        let r = bcu.check(&access(ptr, (base, base + 4), false), &vm);
        assert_eq!(r.verdict, GuardVerdict::Fault);
        assert_eq!(bcu.violations()[0].kind, ViolationKind::UnknownKernel);
    }

    #[test]
    fn strict_mode_rejects_non_region_pointers_at_runtime_sites() {
        let (vm, setup, _, base) = setup_env();
        let cfg = BcuConfig {
            strict_runtime_tags: true,
            ..BcuConfig::default()
        };
        let mut bcu = Bcu::new(cfg, 1);
        bcu.register_kernel(setup);
        // A raw (untagged) VA smuggled in through data: class Unprotected.
        let raw = TaggedPtr::from_raw(base);
        let r = bcu.check(&access(raw, (base, base + 4), true), &vm);
        assert_eq!(r.verdict, GuardVerdict::Fault);
        assert_eq!(bcu.violations()[0].kind, ViolationKind::ForgedPointer);
        // A crafted Type 3 value claiming a huge power-of-two bound.
        let crafted = TaggedPtr::with_log2_size(base, 40);
        let r = bcu.check(&access(crafted, (base, base + 4), true), &vm);
        assert_eq!(r.verdict, GuardVerdict::Fault);
        assert_eq!(bcu.violations()[1].kind, ViolationKind::ForgedPointer);
        assert_eq!(bcu.stats().unprotected, 0);
        assert_eq!(bcu.stats().type3_checks, 0);
    }

    #[test]
    fn strict_mode_spares_static_sites_and_default_allows() {
        let (vm, setup, _, base) = setup_env();
        let cfg = BcuConfig {
            strict_runtime_tags: true,
            ..BcuConfig::default()
        };
        let mut bcu = Bcu::new(cfg, 1);
        bcu.register_kernel(setup);
        // A statically-proven site carries an untagged pointer by design.
        let mut proven = access(TaggedPtr::from_raw(base), (base, base + 4), false);
        proven.site_check = SiteCheck::Static;
        assert_eq!(bcu.check(&proven, &vm).verdict, GuardVerdict::Allow);
        // With strict mode off (the default) the same runtime-site access
        // passes unchecked — the exposure the serving config closes.
        let mut lax = Bcu::new(BcuConfig::default(), 1);
        lax.register_kernel(setup);
        let r = lax.check(
            &access(TaggedPtr::from_raw(base), (base, base + 4), true),
            &vm,
        );
        assert_eq!(r.verdict, GuardVerdict::Allow);
        assert_eq!(lax.stats().unprotected, 1);
    }

    #[test]
    fn rcache_evictions_attribute_cross_kernel_pressure() {
        let (mut vm, setup, _, _) = setup_env();
        // Two kernels sharing one core, each touching more regions than the
        // 2-entry L1 holds, forces displacement; victims from the other
        // kernel count as cross-kernel contention.
        let other = ShieldSetup {
            kernel_id: 6,
            key: 0x1357_9BDF_0246_8ACE,
            ..setup
        };
        let mut ids = Vec::new();
        for i in 0..4u16 {
            let buf = vm.alloc(64, AllocPolicy::Device512).ok();
            let Some(buf) = buf else { panic!("alloc") };
            for k in [5u16, 6] {
                let id = 0x100 + i * 2 + (k - 5);
                write_entry(
                    &mut vm,
                    setup.rbt_base,
                    id,
                    &BoundsEntry {
                        valid: true,
                        readonly: false,
                        kernel_id: k,
                        base: buf.va,
                        size: 64,
                    },
                )
                .ok();
                ids.push((k, id, buf.va));
            }
        }
        let cfg = BcuConfig {
            l1_entries: 2,
            l2_entries: 4,
            ..BcuConfig::default()
        };
        let mut bcu = Bcu::new(cfg, 1);
        bcu.register_kernel(setup);
        bcu.register_kernel(other);
        // Kernel-major order: kernel 5 warms both levels, then kernel 6's
        // fills displace its residents.
        ids.sort_by_key(|(k, id, _)| (*k, *id));
        for (k, id, va) in &ids {
            let key = if *k == 5 { setup.key } else { other.key };
            let ptr = TaggedPtr::with_region_id(*va, encrypt_id(*id, key));
            let mut a = access(ptr, (*va, *va + 4), false);
            a.kernel_id = *k;
            assert_eq!(bcu.check(&a, &vm).verdict, GuardVerdict::Allow);
        }
        let s = bcu.stats();
        assert!(s.rcache_evictions > 0, "tiny RCaches must evict");
        assert!(
            s.cross_kernel_evictions > 0,
            "interleaved kernels must displace each other"
        );
        assert!(s.cross_kernel_evictions <= s.rcache_evictions);
    }

    #[test]
    fn l1_hit_rate_reported() {
        let (vm, setup, id, base) = setup_env();
        let mut bcu = Bcu::new(BcuConfig::default(), 1);
        bcu.register_kernel(setup);
        let ptr = TaggedPtr::with_region_id(base, encrypt_id(id, setup.key));
        for _ in 0..10 {
            let _ = bcu.check(&access(ptr, (base, base + 4), false), &vm);
        }
        let s = bcu.stats();
        assert_eq!(s.rbt_fetches, 1);
        assert_eq!(s.l1_hits, 9);
        assert!((s.l1_hit_rate() - 0.9).abs() < 1e-12);
    }
}
