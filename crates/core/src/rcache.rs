//! The RCache hierarchy (paper §5.5): a small FIFO L1 RCache with parallel
//! tag/data lookup, backed by a 64-entry fully associative L2 RCache whose
//! entries carry a kernel-ID field (which is what makes intra-core
//! multi-kernel sharing work, §6.2).

use gpushield_driver::BoundsEntry;
use std::collections::VecDeque;

/// Flips one bit of a cached [`BoundsEntry`], modelling an SRAM soft error
/// in the RCache data array: bits 0–31 land in `size`, 32–79 in the 48-bit
/// `base`, 80 toggles `valid`, 81 toggles `readonly`.
fn poison_entry(e: &mut BoundsEntry, entropy: u64) {
    match entropy % 82 {
        b @ 0..=31 => e.size ^= 1u32 << b,
        b @ 32..=79 => e.base ^= 1u64 << (b - 32),
        80 => e.valid = !e.valid,
        _ => e.readonly = !e.readonly,
    }
}

/// Tag of an RCache entry: (kernel ID, decrypted buffer ID).
pub type RTag = (u16, u16);

/// The per-core L1 RCache: a FIFO queue with parallel tag lookups (§5.5).
///
/// # Example
///
/// ```
/// use gpushield_core::L1RCache;
/// use gpushield_driver::BoundsEntry;
///
/// let mut rc = L1RCache::new(4);
/// let e = BoundsEntry { valid: true, readonly: false, kernel_id: 1, base: 0x1000, size: 256 };
/// assert!(rc.probe((1, 42)).is_none()); // cold
/// rc.fill((1, 42), e);
/// assert_eq!(rc.probe((1, 42)).unwrap().base, 0x1000);
/// ```
#[derive(Debug, Clone)]
pub struct L1RCache {
    entries: VecDeque<(RTag, BoundsEntry)>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl L1RCache {
    /// Creates an L1 RCache with `capacity` entries (the paper sweeps 1–16;
    /// the default configuration uses 4).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-entry RCache");
        L1RCache {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `tag`; FIFO order is *not* refreshed by hits.
    pub fn probe(&mut self, tag: RTag) -> Option<BoundsEntry> {
        match self.entries.iter().find(|(t, _)| *t == tag) {
            Some((_, e)) => {
                self.hits += 1;
                Some(*e)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts an entry, evicting the oldest when full. Returns the
    /// displaced victim's tag, if any — the BCU's contention signal.
    pub fn fill(&mut self, tag: RTag, entry: BoundsEntry) -> Option<RTag> {
        if self.entries.iter().any(|(t, _)| *t == tag) {
            return None;
        }
        let victim = if self.entries.len() == self.capacity {
            self.entries.pop_front().map(|(t, _)| t)
        } else {
            None
        };
        self.entries.push_back((tag, entry));
        victim
    }

    /// Fault-injection hook: corrupts one bit of one resident entry's
    /// bounds data, victim and bit chosen deterministically from `entropy`.
    /// Returns `false` when the cache holds nothing to corrupt.
    pub fn poison(&mut self, entropy: u64) -> bool {
        if self.entries.is_empty() {
            return false;
        }
        let idx = (entropy as usize) % self.entries.len();
        poison_entry(&mut self.entries[idx].1, entropy >> 8);
        true
    }

    /// Drops all entries belonging to `kernel_id` (kernel termination).
    pub fn flush_kernel(&mut self, kernel_id: u16) {
        self.entries.retain(|((k, _), _)| *k != kernel_id);
    }

    /// Drops everything (context switch).
    pub fn flush_all(&mut self) {
        self.entries.clear();
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// The per-core L2 RCache: fully associative, LRU, split tag/data arrays
/// with a kernel-ID field per entry (§5.5).
///
/// # Example
///
/// ```
/// use gpushield_core::L2RCache;
/// use gpushield_driver::BoundsEntry;
///
/// let mut rc = L2RCache::new(64);
/// let e = BoundsEntry { valid: true, readonly: true, kernel_id: 7, base: 0x4000, size: 64 };
/// rc.fill((7, 3), e);
/// assert!(rc.probe((7, 3)).unwrap().readonly);
/// assert!(rc.probe((8, 3)).is_none(), "kernel IDs do not alias");
/// ```
#[derive(Debug, Clone)]
pub struct L2RCache {
    entries: Vec<(RTag, BoundsEntry, u64)>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl L2RCache {
    /// Creates an L2 RCache with `capacity` entries (64 in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-entry RCache");
        L2RCache {
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `tag`, refreshing LRU order on hit.
    pub fn probe(&mut self, tag: RTag) -> Option<BoundsEntry> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.iter_mut().find(|(t, _, _)| *t == tag) {
            Some((_, e, stamp)) => {
                *stamp = tick;
                self.hits += 1;
                Some(*e)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts an entry, evicting the least recently used when full.
    /// Returns the displaced victim's tag, if any — the BCU's contention
    /// signal.
    pub fn fill(&mut self, tag: RTag, entry: BoundsEntry) -> Option<RTag> {
        self.tick += 1;
        if self.entries.iter().any(|(t, _, _)| *t == tag) {
            return None;
        }
        let evicted = if self.entries.len() == self.capacity {
            self.entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, s))| *s)
                .map(|(i, _)| i)
                .map(|i| self.entries.swap_remove(i).0)
        } else {
            None
        };
        self.entries.push((tag, entry, self.tick));
        evicted
    }

    /// Fault-injection hook: corrupts one bit of one resident entry's
    /// bounds data, victim and bit chosen deterministically from `entropy`.
    /// Returns `false` when the cache holds nothing to corrupt.
    pub fn poison(&mut self, entropy: u64) -> bool {
        if self.entries.is_empty() {
            return false;
        }
        let idx = (entropy as usize) % self.entries.len();
        poison_entry(&mut self.entries[idx].1, entropy >> 8);
        true
    }

    /// Drops all entries belonging to `kernel_id`.
    pub fn flush_kernel(&mut self, kernel_id: u16) {
        self.entries.retain(|((k, _), _, _)| *k != kernel_id);
    }

    /// Drops everything.
    pub fn flush_all(&mut self) {
        self.entries.clear();
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(base: u64) -> BoundsEntry {
        BoundsEntry {
            valid: true,
            readonly: false,
            kernel_id: 1,
            base,
            size: 64,
        }
    }

    #[test]
    fn l1_fifo_evicts_oldest_despite_hits() {
        let mut c = L1RCache::new(2);
        c.fill((1, 10), entry(0x1000));
        c.fill((1, 11), entry(0x2000));
        assert!(c.probe((1, 10)).is_some()); // hit does not refresh FIFO
        c.fill((1, 12), entry(0x3000)); // evicts (1,10)
        assert!(c.probe((1, 10)).is_none());
        assert!(c.probe((1, 11)).is_some());
        assert!(c.probe((1, 12)).is_some());
    }

    #[test]
    fn l2_lru_keeps_recently_used() {
        let mut c = L2RCache::new(2);
        c.fill((1, 10), entry(0x1000));
        c.fill((1, 11), entry(0x2000));
        assert!(c.probe((1, 10)).is_some()); // refresh
        c.fill((1, 12), entry(0x3000)); // evicts (1,11)
        assert!(c.probe((1, 10)).is_some());
        assert!(c.probe((1, 11)).is_none());
    }

    #[test]
    fn kernel_flush_is_selective() {
        let mut c = L2RCache::new(4);
        c.fill((1, 10), entry(0x1000));
        c.fill((2, 10), entry(0x2000));
        c.flush_kernel(1);
        assert!(c.probe((1, 10)).is_none());
        assert!(c.probe((2, 10)).is_some());
    }

    #[test]
    fn same_id_different_kernels_do_not_alias() {
        let mut c = L1RCache::new(4);
        c.fill((1, 10), entry(0x1000));
        c.fill((2, 10), entry(0x2000));
        assert_eq!(c.probe((1, 10)).unwrap().base, 0x1000);
        assert_eq!(c.probe((2, 10)).unwrap().base, 0x2000);
    }

    #[test]
    fn duplicate_fill_is_idempotent() {
        let mut c = L1RCache::new(2);
        c.fill((1, 10), entry(0x1000));
        c.fill((1, 10), entry(0x1000));
        c.fill((1, 11), entry(0x2000));
        // Both still present: the duplicate fill did not consume a slot.
        assert!(c.probe((1, 10)).is_some());
        assert!(c.probe((1, 11)).is_some());
    }

    #[test]
    fn stats_accumulate() {
        let mut c = L1RCache::new(1);
        assert!(c.probe((1, 1)).is_none());
        c.fill((1, 1), entry(0));
        assert!(c.probe((1, 1)).is_some());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    fn entry(kernel_id: u16, base: u64) -> BoundsEntry {
        BoundsEntry {
            valid: true,
            readonly: false,
            kernel_id,
            base,
            size: 128,
        }
    }

    #[test]
    fn l1_flush_all_empties() {
        let mut c = L1RCache::new(4);
        c.fill((1, 1), entry(1, 0));
        c.fill((2, 2), entry(2, 0));
        c.flush_all();
        assert!(c.probe((1, 1)).is_none());
        assert!(c.probe((2, 2)).is_none());
    }

    #[test]
    fn l2_capacity_is_respected() {
        let mut c = L2RCache::new(4);
        for id in 0..8u16 {
            c.fill((1, id), entry(1, u64::from(id) * 4096));
        }
        let present = (0..8u16).filter(|id| c.probe((1, *id)).is_some()).count();
        assert_eq!(present, 4, "only capacity entries survive");
    }

    #[test]
    fn l2_returns_stored_data() {
        let mut c = L2RCache::new(8);
        c.fill((3, 9), entry(3, 0xAB00));
        let e = c.probe((3, 9)).unwrap();
        assert_eq!(e.base, 0xAB00);
        assert_eq!(e.kernel_id, 3);
    }

    #[test]
    fn poison_on_empty_cache_reports_nothing_to_corrupt() {
        let mut l1 = L1RCache::new(2);
        let mut l2 = L2RCache::new(2);
        assert!(!l1.poison(0xDEAD));
        assert!(!l2.poison(0xDEAD));
    }

    #[test]
    fn poison_mutates_exactly_one_resident_entry() {
        let mut c = L1RCache::new(4);
        c.fill((1, 1), entry(1, 0x1000));
        c.fill((1, 2), entry(1, 0x2000));
        assert!(c.poison(0x1234_5678));
        let a = c.probe((1, 1)).unwrap();
        let b = c.probe((1, 2)).unwrap();
        let clean_a = entry(1, 0x1000);
        let clean_b = entry(1, 0x2000);
        let changed = usize::from(a != clean_a) + usize::from(b != clean_b);
        assert_eq!(changed, 1, "exactly one entry corrupted");
    }

    #[test]
    fn poison_is_deterministic_in_entropy() {
        let mut c1 = L2RCache::new(4);
        let mut c2 = L2RCache::new(4);
        for c in [&mut c1, &mut c2] {
            c.fill((1, 1), entry(1, 0x1000));
            c.fill((1, 2), entry(1, 0x2000));
            assert!(c.poison(0xABCD_EF01_2345_6789));
        }
        assert_eq!(c1.probe((1, 1)), c2.probe((1, 1)));
        assert_eq!(c1.probe((1, 2)), c2.probe((1, 2)));
    }

    #[test]
    fn l1_single_entry_degenerates_to_last_fill() {
        let mut c = L1RCache::new(1);
        c.fill((1, 1), entry(1, 0));
        c.fill((1, 2), entry(1, 128));
        assert!(c.probe((1, 1)).is_none());
        assert!(c.probe((1, 2)).is_some());
    }
}
