//! The benchmark suite of the GPUShield reproduction.
//!
//! The paper evaluates 88 CUDA benchmarks (Rodinia, Parboil, GraphBig,
//! CUDA-SDK) and 17 OpenCL benchmarks on a cycle-level simulator. The
//! originals are CUDA/OpenCL sources we cannot compile here, so this crate
//! provides IR-level workload programs that model each named benchmark's
//! *structural traits* — buffer count, affine vs indirect addressing,
//! memory intensity, launch structure — which are the properties the
//! paper's results depend on (see DESIGN.md §5).
//!
//! Workloads are host programs written against the [`HostApi`] trait, so
//! they can run on a protected system, an unprotected baseline, or a pure
//! metadata probe ([`ProbeHost`], which regenerates Figs. 1 and 11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod data;
pub mod dsl;
mod host;
mod programs;
mod registry;

pub use data::{random_u32s, uniform_csr, workload_rng, CsrGraph};
pub use dsl::AddrStyle;
pub use host::{BufId, HostApi, ProbeHost, WArg};
pub use programs::algos;
pub use programs::common as kernels;
pub use programs::rep::{representative, RepKernel};
pub use programs::rodinia;
pub use registry::{
    all, by_name, cuda_set, fig11_set, fig18_names, fig19_set, opencl_set, rcache_sensitive_set,
    Category, Program, Suite, Workload,
};
