//! Small kernel-authoring helpers shared by the workload programs,
//! including the vendor addressing styles of paper Fig. 2.

use gpushield_isa::{KernelBuilder, MemSpace, MemWidth, Operand, ParamRef, VReg};

/// Which Fig. 2 addressing method generated kernels use for global
/// accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrStyle {
    /// Method C: base register + offset (also what Intel's stateless mode
    /// lowers to).
    BaseOffset,
    /// Method A: binding-table indexed `send` (Intel BTS).
    BindingTable,
    /// Method B: full virtual address materialised in a register (Nvidia /
    /// AMD flat).
    Flat,
}

/// Loads 4 bytes from buffer parameter `p` at byte offset `off` using the
/// requested addressing style.
pub fn g_ld(b: &mut KernelBuilder, style: AddrStyle, p: ParamRef, off: impl Into<Operand>) -> VReg {
    let off = off.into();
    let addr = match style {
        AddrStyle::BaseOffset => b.base_offset(p, off),
        AddrStyle::BindingTable => b.binding_table(p.index(), off),
        AddrStyle::Flat => {
            let full = b.add(p, off);
            b.flat(full)
        }
    };
    b.ld(MemSpace::Global, MemWidth::W4, addr)
}

/// Stores 4 bytes to buffer parameter `p` at byte offset `off`.
pub fn g_st(
    b: &mut KernelBuilder,
    style: AddrStyle,
    p: ParamRef,
    off: impl Into<Operand>,
    val: impl Into<Operand>,
) {
    let off = off.into();
    let addr = match style {
        AddrStyle::BaseOffset => b.base_offset(p, off),
        AddrStyle::BindingTable => b.binding_table(p.index(), off),
        AddrStyle::Flat => {
            let full = b.add(p, off);
            b.flat(full)
        }
    };
    b.st(MemSpace::Global, MemWidth::W4, addr, val);
}

/// `tid * 4` as a register (byte offset of a 32-bit element index).
pub fn byte_off4(b: &mut KernelBuilder, idx: impl Into<Operand>) -> VReg {
    b.shl(idx, Operand::Imm(2))
}

/// Degenerate kernel shapes a program generator can request but the
/// builder cannot express — returned as typed errors where the raw
/// [`KernelBuilder`] calls would panic (`for_loop` asserts a non-zero
/// step, parameter declaration asserts the 128-argument limit) or where
/// the emitted kernel could never terminate (a counted loop stepping away
/// from its bound spins until the cycle watchdog kills the launch).
///
/// Shapes that merely look odd but are well-defined are *not* errors:
/// zero-trip loops (`start == end`, or a step moving past an already-met
/// bound) emit a loop that executes no iterations, and empty loop/branch
/// bodies still get their terminators from the structured-control-flow
/// helpers, so both validate and run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// `for` loop with step 0: the induction variable never advances.
    ZeroStep {
        /// Requested constant bounds.
        start: i64,
        /// Requested constant bounds.
        end: i64,
    },
    /// `for` loop whose step moves the induction variable away from the
    /// bound (`start < end` with a negative step or vice versa): the trip
    /// count is unbounded.
    UnboundedLoop {
        /// Requested constant bounds.
        start: i64,
        /// Requested constant bounds.
        end: i64,
        /// The divergent step.
        step: i64,
    },
    /// A buffer parameter whose planned allocation is zero bytes wide:
    /// nothing can legally dereference it, and a zero-size region entry
    /// would make every access to it a violation.
    ZeroWidthBuffer {
        /// Declared parameter name.
        name: String,
    },
    /// The kernel already carries the architectural maximum of 128
    /// arguments (OpenCL 2.0's limit, paper §2.1).
    TooManyParams {
        /// Parameters already declared.
        count: usize,
    },
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeError::ZeroStep { start, end } => {
                write!(f, "counted loop {start}..{end} with step 0 never advances")
            }
            ShapeError::UnboundedLoop { start, end, step } => {
                write!(
                    f,
                    "counted loop {start}..{end} with step {step} is unbounded"
                )
            }
            ShapeError::ZeroWidthBuffer { name } => {
                write!(f, "buffer parameter {name} has a zero-byte allocation plan")
            }
            ShapeError::TooManyParams { count } => {
                write!(f, "kernel already has {count} parameters (limit 128)")
            }
        }
    }
}

impl std::error::Error for ShapeError {}

/// Emits a constant-bound counted loop after validating the shape:
/// rejects step 0 (builder panic) and steps that diverge from the bound
/// (unbounded trip count) with a [`ShapeError`] instead. Zero-trip
/// shapes are valid and emit a loop that executes no iterations.
pub fn counted_loop(
    b: &mut KernelBuilder,
    start: i64,
    end: i64,
    step: i64,
    body: impl FnOnce(&mut KernelBuilder, VReg),
) -> Result<(), ShapeError> {
    if step == 0 {
        return Err(ShapeError::ZeroStep { start, end });
    }
    if (start < end && step < 0) || (start > end && step > 0) {
        return Err(ShapeError::UnboundedLoop { start, end, step });
    }
    b.for_loop(Operand::Imm(start), Operand::Imm(end), step, body);
    Ok(())
}

/// Declares a global buffer parameter with a planned host allocation of
/// `planned_bytes`, rejecting width-0 plans and the 129th parameter with
/// a [`ShapeError`] instead of a builder panic.
pub fn planned_buffer(
    b: &mut KernelBuilder,
    name: &str,
    planned_bytes: u64,
    readonly: bool,
) -> Result<ParamRef, ShapeError> {
    if planned_bytes == 0 {
        return Err(ShapeError::ZeroWidthBuffer {
            name: name.to_string(),
        });
    }
    if b.param_count() >= 128 {
        return Err(ShapeError::TooManyParams {
            count: b.param_count(),
        });
    }
    Ok(b.param_buffer(name, readonly))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpushield_isa::{AddrExpr, Instr};

    #[test]
    fn styles_produce_their_addressing_methods() {
        for (style, method) in [
            (AddrStyle::BaseOffset, 'C'),
            (AddrStyle::BindingTable, 'A'),
            (AddrStyle::Flat, 'B'),
        ] {
            let mut b = KernelBuilder::new("t");
            let p = b.param_buffer("p", false);
            let tid = b.global_thread_id();
            let off = byte_off4(&mut b, tid);
            let _ = g_ld(&mut b, style, p, off);
            b.ret();
            let k = b.finish().unwrap();
            let found = k.iter_instrs().find_map(|(_, _, i)| match i {
                Instr::Ld { addr, .. } => Some(addr.method()),
                _ => None,
            });
            assert_eq!(found, Some(method), "style {style:?}");
        }
    }

    #[test]
    fn degenerate_loop_shapes_are_typed_errors() {
        let mut b = KernelBuilder::new("t");
        assert_eq!(
            counted_loop(&mut b, 0, 8, 0, |_, _| {}),
            Err(ShapeError::ZeroStep { start: 0, end: 8 })
        );
        assert_eq!(
            counted_loop(&mut b, 0, 8, -1, |_, _| {}),
            Err(ShapeError::UnboundedLoop {
                start: 0,
                end: 8,
                step: -1
            })
        );
        assert_eq!(
            counted_loop(&mut b, 8, 0, 2, |_, _| {}),
            Err(ShapeError::UnboundedLoop {
                start: 8,
                end: 0,
                step: 2
            })
        );
    }

    #[test]
    fn zero_trip_and_empty_body_loops_are_valid() {
        // A zero-trip bound and an empty body are well-defined: the
        // structured helpers still terminate every block, so the kernel
        // validates and would simply skip the loop at runtime.
        let mut b = KernelBuilder::new("t");
        let p = b.param_buffer("p", false);
        counted_loop(&mut b, 5, 5, 1, |_, _| {}).unwrap();
        counted_loop(&mut b, 0, 3, 1, |b, i| {
            let off = byte_off4(b, i);
            let _ = g_ld(b, AddrStyle::BaseOffset, p, off);
        })
        .unwrap();
        b.ret();
        assert!(b.finish().is_ok());
    }

    #[test]
    fn degenerate_buffer_plans_are_typed_errors() {
        let mut b = KernelBuilder::new("t");
        assert_eq!(
            planned_buffer(&mut b, "empty", 0, false),
            Err(ShapeError::ZeroWidthBuffer {
                name: "empty".to_string()
            })
        );
        for i in 0..128 {
            planned_buffer(&mut b, &format!("p{i}"), 64, false).unwrap();
        }
        assert_eq!(
            planned_buffer(&mut b, "overflow", 64, false),
            Err(ShapeError::TooManyParams { count: 128 })
        );
    }

    #[test]
    fn flat_style_preserves_pointer_tag_through_arithmetic() {
        // The Flat helper adds the offset to the tagged base in a register;
        // validated structurally here (semantics tested in the simulator).
        let mut b = KernelBuilder::new("t");
        let p = b.param_buffer("p", false);
        g_st(&mut b, AddrStyle::Flat, p, Operand::Imm(8), Operand::Imm(1));
        b.ret();
        let k = b.finish().unwrap();
        assert!(matches!(
            k.block(gpushield_isa::BlockId(0)).instrs()[1],
            Instr::St {
                addr: AddrExpr::Flat { .. },
                ..
            }
        ));
    }
}
