//! Small kernel-authoring helpers shared by the workload programs,
//! including the vendor addressing styles of paper Fig. 2.

use gpushield_isa::{KernelBuilder, MemSpace, MemWidth, Operand, ParamRef, VReg};

/// Which Fig. 2 addressing method generated kernels use for global
/// accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrStyle {
    /// Method C: base register + offset (also what Intel's stateless mode
    /// lowers to).
    BaseOffset,
    /// Method A: binding-table indexed `send` (Intel BTS).
    BindingTable,
    /// Method B: full virtual address materialised in a register (Nvidia /
    /// AMD flat).
    Flat,
}

/// Loads 4 bytes from buffer parameter `p` at byte offset `off` using the
/// requested addressing style.
pub fn g_ld(b: &mut KernelBuilder, style: AddrStyle, p: ParamRef, off: impl Into<Operand>) -> VReg {
    let off = off.into();
    let addr = match style {
        AddrStyle::BaseOffset => b.base_offset(p, off),
        AddrStyle::BindingTable => b.binding_table(p.index(), off),
        AddrStyle::Flat => {
            let full = b.add(p, off);
            b.flat(full)
        }
    };
    b.ld(MemSpace::Global, MemWidth::W4, addr)
}

/// Stores 4 bytes to buffer parameter `p` at byte offset `off`.
pub fn g_st(
    b: &mut KernelBuilder,
    style: AddrStyle,
    p: ParamRef,
    off: impl Into<Operand>,
    val: impl Into<Operand>,
) {
    let off = off.into();
    let addr = match style {
        AddrStyle::BaseOffset => b.base_offset(p, off),
        AddrStyle::BindingTable => b.binding_table(p.index(), off),
        AddrStyle::Flat => {
            let full = b.add(p, off);
            b.flat(full)
        }
    };
    b.st(MemSpace::Global, MemWidth::W4, addr, val);
}

/// `tid * 4` as a register (byte offset of a 32-bit element index).
pub fn byte_off4(b: &mut KernelBuilder, idx: impl Into<Operand>) -> VReg {
    b.shl(idx, Operand::Imm(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpushield_isa::{AddrExpr, Instr};

    #[test]
    fn styles_produce_their_addressing_methods() {
        for (style, method) in [
            (AddrStyle::BaseOffset, 'C'),
            (AddrStyle::BindingTable, 'A'),
            (AddrStyle::Flat, 'B'),
        ] {
            let mut b = KernelBuilder::new("t");
            let p = b.param_buffer("p", false);
            let tid = b.global_thread_id();
            let off = byte_off4(&mut b, tid);
            let _ = g_ld(&mut b, style, p, off);
            b.ret();
            let k = b.finish().unwrap();
            let found = k.iter_instrs().find_map(|(_, _, i)| match i {
                Instr::Ld { addr, .. } => Some(addr.method()),
                _ => None,
            });
            assert_eq!(found, Some(method), "style {style:?}");
        }
    }

    #[test]
    fn flat_style_preserves_pointer_tag_through_arithmetic() {
        // The Flat helper adds the offset to the tagged base in a register;
        // validated structurally here (semantics tested in the simulator).
        let mut b = KernelBuilder::new("t");
        let p = b.param_buffer("p", false);
        g_st(&mut b, AddrStyle::Flat, p, Operand::Imm(8), Operand::Imm(1));
        b.ret();
        let k = b.finish().unwrap();
        assert!(matches!(
            k.block(gpushield_isa::BlockId(0)).instrs()[1],
            Instr::St {
                addr: AddrExpr::Flat { .. },
                ..
            }
        ));
    }
}
