//! Deterministic synthetic input generators (graphs, arrays).
//!
//! The paper runs real benchmark inputs; we synthesise inputs with the same
//! structural properties (CSR graphs with bounded degree, random keys,
//! point sets) from per-workload seeds so every run is reproducible.

use gpushield_runtime::rng::StdRng;

/// A seeded RNG for workload `name` (stable across runs).
pub fn workload_rng(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A CSR graph: `row` has `n+1` offsets into `col`.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// Row offsets (length `n + 1`).
    pub row: Vec<u32>,
    /// Column indices (length `row[n]`).
    pub col: Vec<u32>,
}

impl CsrGraph {
    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.row.len() - 1
    }

    /// Number of edges.
    pub fn edges(&self) -> usize {
        self.col.len()
    }
}

/// Generates a uniform random graph with `n` vertices and average degree
/// `deg` (self-loops allowed; benchmark kernels do not care).
pub fn uniform_csr(rng: &mut StdRng, n: usize, deg: usize) -> CsrGraph {
    let mut row = Vec::with_capacity(n + 1);
    let mut col = Vec::new();
    row.push(0u32);
    for _ in 0..n {
        let d = rng.gen_range(1..=deg * 2 - 1);
        for _ in 0..d {
            col.push(rng.gen_range(0..n as u32));
        }
        row.push(col.len() as u32);
    }
    CsrGraph { row, col }
}

/// Random `u32`s below `max`.
pub fn random_u32s(rng: &mut StdRng, n: usize, max: u32) -> Vec<u32> {
    (0..n).map(|_| rng.gen_range(0..max)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_stable_per_name() {
        let a: u64 = workload_rng("bfs").next_u64();
        let b: u64 = workload_rng("bfs").next_u64();
        let c: u64 = workload_rng("sssp").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn csr_is_well_formed() {
        let mut rng = workload_rng("csr");
        let g = uniform_csr(&mut rng, 100, 8);
        assert_eq!(g.vertices(), 100);
        assert_eq!(*g.row.last().unwrap() as usize, g.edges());
        assert!(g.row.windows(2).all(|w| w[0] <= w[1]));
        assert!(g.col.iter().all(|c| (*c as usize) < 100));
        // Average degree in the requested ballpark.
        let avg = g.edges() as f64 / g.vertices() as f64;
        assert!(avg > 2.0 && avg < 16.0, "avg degree {avg}");
    }

    #[test]
    fn random_values_bounded() {
        let mut rng = workload_rng("vals");
        let v = random_u32s(&mut rng, 1000, 50);
        assert!(v.iter().all(|x| *x < 50));
    }
}
