//! Fully-functional GPU algorithms with host-verifiable results.
//!
//! Unlike the cost-model archetypes in [`super::common`], these kernels
//! compute real answers (sortedness, prefix sums, BFS levels, SpMV
//! products, exact histogram counts), so the integration suite can verify
//! the simulator's SIMT semantics — divergence, barriers, and atomics —
//! against host oracles while exercising the same protected memory paths
//! as everything else.

use crate::dsl::byte_off4;
use gpushield_isa::{CmpOp, Kernel, KernelBuilder, MemSpace, MemWidth, Operand};
use std::sync::Arc;

/// One compare-exchange step of a bitonic sorting network.
///
/// Arguments: `data`, `n`, `j`, `k` — the host drives the classic
/// `for k in powers; for j in k/2..1` schedule. Each thread with
/// `l = tid ^ j > tid` orders the pair `(data[tid], data[l])` ascending
/// when `tid & k == 0`, descending otherwise.
pub fn bitonic_step_kernel() -> Arc<Kernel> {
    let mut b = KernelBuilder::new("bitonic_step");
    let data = b.param_buffer("data", false);
    let n = b.param_scalar("n");
    let j = b.param_scalar("j");
    let k = b.param_scalar("k");
    let tid = b.global_thread_id();
    let guard = b.lt(tid, n);
    b.if_then(guard, |b| {
        let l = b.xor(tid, j);
        let is_upper = b.cmp(CmpOp::Gt, l, tid);
        b.if_then(is_upper, |b| {
            let off_i = byte_off4(b, tid);
            let off_l = byte_off4(b, l);
            let a = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(data, off_i));
            let c = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(data, off_l));
            let lo = b.min(a, c);
            let hi = b.max(a, c);
            // Ascending when (tid & k) == 0.
            let bit = b.and(tid, k);
            let asc = b.eq(bit, Operand::Imm(0));
            let first = b.sel(asc, lo, hi);
            let second = b.sel(asc, hi, lo);
            b.st(
                MemSpace::Global,
                MemWidth::W4,
                b.base_offset(data, off_i),
                first,
            );
            b.st(
                MemSpace::Global,
                MemWidth::W4,
                b.base_offset(data, off_l),
                second,
            );
        });
    });
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

/// Per-workgroup inclusive prefix scan (Hillis–Steele in shared memory,
/// double-buffered across barrier phases). Writes each block's scanned
/// values to `out` and the block total to `sums[blockIdx]`.
///
/// # Panics
///
/// Panics unless `block` is a power of two.
pub fn scan_block_kernel(block: u32) -> Arc<Kernel> {
    assert!(block.is_power_of_two(), "scan block must be 2^k");
    let mut b = KernelBuilder::new("scan_block");
    let input = b.param_buffer("in", true);
    let out = b.param_buffer("out", false);
    let sums = b.param_buffer("sums", false);
    let n = b.param_scalar("n");
    // Two buffers of `block` words each.
    b.shared_mem(u64::from(block) * 8);
    let ltid = b.mov(b.thread_id());
    let g = b.global_thread_id();
    let x = b.mov(Operand::Imm(0));
    let inb = b.lt(g, n);
    b.if_then(inb, |b| {
        let off = byte_off4(b, g);
        let v = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(input, off));
        b.assign(x, v);
    });
    let half = i64::from(block) * 4;
    // Write into buffer A (offset 0).
    let a_off = byte_off4(&mut b, ltid);
    b.st(MemSpace::Shared, MemWidth::W4, b.flat(a_off), x);
    b.bar();
    let mut d = 1i64;
    let mut src_is_a = true;
    while d < i64::from(block) {
        let (src_base, dst_base) = if src_is_a { (0, half) } else { (half, 0) };
        // dst[tid] = src[tid] + (tid >= d ? src[tid-d] : 0)
        let my_off = byte_off4(&mut b, ltid);
        let src_addr = b.add(my_off, Operand::Imm(src_base));
        let mine = b.ld(MemSpace::Shared, MemWidth::W4, b.flat(src_addr));
        let total = b.mov(mine);
        let has_peer = b.ge(ltid, Operand::Imm(d));
        b.if_then(has_peer, |b| {
            let peer = b.sub(ltid, Operand::Imm(d));
            let peer_off = byte_off4(b, peer);
            let peer_addr = b.add(peer_off, Operand::Imm(src_base));
            let pv = b.ld(MemSpace::Shared, MemWidth::W4, b.flat(peer_addr));
            let s = b.add(total, pv);
            b.assign(total, s);
        });
        let dst_addr = b.add(my_off, Operand::Imm(dst_base));
        b.st(MemSpace::Shared, MemWidth::W4, b.flat(dst_addr), total);
        b.bar();
        src_is_a = !src_is_a;
        d *= 2;
    }
    let final_base = if src_is_a { 0 } else { half };
    let my_off = byte_off4(&mut b, ltid);
    let fin_addr = b.add(my_off, Operand::Imm(final_base));
    let scanned = b.ld(MemSpace::Shared, MemWidth::W4, b.flat(fin_addr));
    let inb2 = b.lt(g, n);
    b.if_then(inb2, |b| {
        let off = byte_off4(b, g);
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(out, off),
            scanned,
        );
    });
    // Lane block-1 publishes the block total.
    let is_last = b.eq(ltid, Operand::Imm(i64::from(block) - 1));
    b.if_then(is_last, |b| {
        let wg = b.mov(b.block_id());
        let woff = byte_off4(b, wg);
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(sums, woff),
            scanned,
        );
    });
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

/// One BFS level expansion: every vertex at `level[v] == cur` relaxes its
/// neighbours, marking unvisited ones (`0xFFFF_FFFF`) with `cur + 1` and
/// atomically counting discoveries in `found[0]`.
pub fn bfs_step_kernel() -> Arc<Kernel> {
    let mut b = KernelBuilder::new("bfs_step");
    let row = b.param_buffer("row", true);
    let col = b.param_buffer("col", true);
    let level = b.param_buffer("level", false);
    let found = b.param_buffer("found", false);
    let n = b.param_scalar("n");
    let cur = b.param_scalar("cur");
    let v = b.global_thread_id();
    let guard = b.lt(v, n);
    b.if_then(guard, |b| {
        let voff = byte_off4(b, v);
        let lv = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(level, voff));
        let active = b.eq(lv, cur);
        b.if_then(active, |b| {
            let start = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(row, voff));
            let v1 = b.add(v, Operand::Imm(1));
            let v1off = byte_off4(b, v1);
            let end = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(row, v1off));
            b.for_loop(start, end, 1, |b, e| {
                let eoff = byte_off4(b, e);
                let j = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(col, eoff));
                let joff = byte_off4(b, j);
                let lj = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(level, joff));
                let unvisited = b.eq(lj, Operand::Imm(0xFFFF_FFFF));
                b.if_then(unvisited, |b| {
                    let next = b.add(cur, Operand::Imm(1));
                    b.st(
                        MemSpace::Global,
                        MemWidth::W4,
                        b.base_offset(level, joff),
                        next,
                    );
                    let zero = byte_off4(b, Operand::Imm(0));
                    let _ = b.atom_add(
                        MemSpace::Global,
                        MemWidth::W4,
                        b.base_offset(found, zero),
                        Operand::Imm(1),
                    );
                });
            });
        });
    });
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

/// CSR sparse matrix–vector product: `y[v] = Σ val[e] * x[col[e]]`.
pub fn spmv_csr_kernel() -> Arc<Kernel> {
    let mut b = KernelBuilder::new("spmv_csr");
    let row = b.param_buffer("row", true);
    let col = b.param_buffer("col", true);
    let val = b.param_buffer("val", true);
    let x = b.param_buffer("x", true);
    let y = b.param_buffer("y", false);
    let n = b.param_scalar("n");
    let v = b.global_thread_id();
    let guard = b.lt(v, n);
    b.if_then(guard, |b| {
        let voff = byte_off4(b, v);
        let start = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(row, voff));
        let v1 = b.add(v, Operand::Imm(1));
        let v1off = byte_off4(b, v1);
        let end = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(row, v1off));
        let acc = b.mov(Operand::Imm(0));
        b.for_loop(start, end, 1, |b, e| {
            let eoff = byte_off4(b, e);
            let a = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(val, eoff));
            let j = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(col, eoff));
            let joff = byte_off4(b, j);
            let xv = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(x, joff));
            let prod = b.mul(a, xv);
            let s = b.add(acc, prod);
            b.assign(acc, s);
        });
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(y, voff), acc);
    });
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

/// Exact histogram with atomic bin updates (`hist[data[i] % bins] += 1`).
pub fn histogram_atomic_kernel(bins: i64) -> Arc<Kernel> {
    let mut b = KernelBuilder::new("histogram_atomic");
    let data = b.param_buffer("data", true);
    let hist = b.param_buffer("hist", false);
    let n = b.param_scalar("n");
    let tid = b.global_thread_id();
    let guard = b.lt(tid, n);
    b.if_then(guard, |b| {
        let off = byte_off4(b, tid);
        let v = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(data, off));
        let bin = b.rem(v, Operand::Imm(bins));
        let boff = byte_off4(b, bin);
        let _ = b.atom_add(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(hist, boff),
            Operand::Imm(1),
        );
    });
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_kernels_are_valid() {
        let _ = bitonic_step_kernel();
        let _ = scan_block_kernel(64);
        let _ = bfs_step_kernel();
        let _ = spmv_csr_kernel();
        let _ = histogram_atomic_kernel(32);
    }

    #[test]
    #[should_panic(expected = "scan block must be 2^k")]
    fn scan_rejects_non_power_of_two() {
        let _ = scan_block_kernel(100);
    }
}
