//! Parameterised kernel generators: the access-pattern archetypes that the
//! paper's benchmarks are built from (affine streaming, stencils, tiled
//! dense algebra, shared-memory reductions, CSR graph traversal, RCache-
//! stressing buffer interleavings, local-memory arrays, and device-heap
//! allocation).

use crate::dsl::{byte_off4, g_ld, g_st, AddrStyle};
use gpushield_isa::{CmpOp, Kernel, KernelBuilder, MemSpace, MemWidth, Operand};
use std::sync::Arc;

/// `out[i] = f(in0[i], …, ink[i])` with a `tid < n` guard — the affine
/// streaming archetype (vectoradd, blackscholes, mri-q, …). Fully provable
/// by static analysis.
pub fn streaming_kernel(
    name: &str,
    n_inputs: usize,
    alu_ops: usize,
    style: AddrStyle,
) -> Arc<Kernel> {
    let mut b = KernelBuilder::new(name);
    let ins: Vec<_> = (0..n_inputs)
        .map(|i| b.param_buffer(&format!("in{i}"), true))
        .collect();
    let out = b.param_buffer("out", false);
    let n = b.param_scalar("n");
    let tid = b.global_thread_id();
    let c = b.lt(tid, n);
    b.if_then(c, |b| {
        let off = byte_off4(b, tid);
        let mut acc = b.mov(Operand::Imm(0));
        for &p in &ins {
            let x = g_ld(b, style, p, off);
            acc = b.xor(acc, x);
        }
        for _ in 0..alu_ops {
            let t = b.mul(acc, Operand::Imm(1_103_515_245));
            acc = b.add(t, Operand::Imm(12_345));
        }
        g_st(b, style, out, off, acc);
    });
    b.ret();
    Arc::new(b.finish().expect("generated kernel is valid"))
}

/// Cyclic multi-buffer access: each inner-loop iteration touches the
/// buffers named by `pattern` (loads, with the last entry stored). This is
/// the archetype that exercises the L1 RCache's FIFO capacity (Fig. 15):
/// the hit rate collapses when the interleaving degree exceeds the entry
/// count.
pub fn interleaved_kernel(
    name: &str,
    n_bufs: usize,
    pattern: &[usize],
    iters: i64,
    stride: i64,
    style: AddrStyle,
) -> Arc<Kernel> {
    assert!(pattern.iter().all(|p| *p < n_bufs), "pattern out of range");
    let mut b = KernelBuilder::new(name);
    let bufs: Vec<_> = (0..n_bufs)
        .map(|i| b.param_buffer(&format!("buf{i}"), false))
        .collect();
    let n = b.param_scalar("n");
    let tid = b.global_thread_id();
    let c = b.lt(tid, n);
    let pattern = pattern.to_vec();
    b.if_then(c, |b| {
        let acc0 = b.mov(Operand::Imm(0));
        b.for_loop(Operand::Imm(0), Operand::Imm(iters), 1, |b, i| {
            let scaled = b.mul(i, Operand::Imm(stride));
            let raw = b.add(tid, scaled);
            let idx = b.rem(raw, n);
            let off = byte_off4(b, idx);
            let (loads, store) = pattern.split_at(pattern.len() - 1);
            for &p in loads {
                let x = g_ld(b, style, bufs[p], off);
                let t = b.xor(acc0, x);
                b.assign(acc0, t);
            }
            g_st(b, style, bufs[store[0]], off, acc0);
        });
    });
    b.ret();
    Arc::new(b.finish().expect("generated kernel is valid"))
}

/// CSR graph traversal: per-vertex edge loop with indirect neighbour
/// accesses. Loop bounds and indices come from memory, so static analysis
/// cannot elide these checks (the §8.3 graph-benchmark observation).
pub fn csr_kernel(name: &str, n_data: usize, writes_out: bool) -> Arc<Kernel> {
    let mut b = KernelBuilder::new(name);
    let row = b.param_buffer("row", true);
    let col = b.param_buffer("col", true);
    let data: Vec<_> = (0..n_data)
        .map(|i| b.param_buffer(&format!("data{i}"), false))
        .collect();
    let out = b.param_buffer("out", false);
    let n = b.param_scalar("n");
    let v = b.global_thread_id();
    let c = b.lt(v, n);
    b.if_then(c, |b| {
        let off_v = byte_off4(b, v);
        let start = g_ld(b, AddrStyle::BaseOffset, row, off_v);
        let vp1 = b.add(v, Operand::Imm(1));
        let off_v1 = byte_off4(b, vp1);
        let end = g_ld(b, AddrStyle::BaseOffset, row, off_v1);
        let acc = b.mov(Operand::Imm(0));
        b.for_loop(start, end, 1, |b, e| {
            let off_e = byte_off4(b, e);
            let j = g_ld(b, AddrStyle::BaseOffset, col, off_e);
            let off_j = byte_off4(b, j);
            for &d in &data {
                let x = g_ld(b, AddrStyle::BaseOffset, d, off_j);
                let t = b.add(acc, x);
                b.assign(acc, t);
            }
        });
        if writes_out {
            g_st(b, AddrStyle::BaseOffset, out, off_v, acc);
        } else {
            // Still publish the result so the loop is not dead.
            g_st(b, AddrStyle::BaseOffset, out, Operand::Imm(0), acc);
        }
    });
    b.ret();
    Arc::new(b.finish().expect("generated kernel is valid"))
}

/// 1-D stencil with interior guards — provable via branch refinement.
pub fn stencil_kernel(name: &str, radius: i64, style: AddrStyle) -> Arc<Kernel> {
    let mut b = KernelBuilder::new(name);
    let input = b.param_buffer("in", true);
    let out = b.param_buffer("out", false);
    let n = b.param_scalar("n");
    let tid = b.global_thread_id();
    let lo = b.ge(tid, Operand::Imm(radius));
    b.if_then(lo, |b| {
        let lim = b.sub(n, Operand::Imm(radius));
        let hi = b.lt(tid, lim);
        b.if_then(hi, |b| {
            let mut acc = b.mov(Operand::Imm(0));
            for d in -radius..=radius {
                let idx = b.add(tid, Operand::Imm(d));
                let off = byte_off4(b, idx);
                let x = g_ld(b, style, input, off);
                acc = b.add(acc, x);
            }
            let div = b.div(acc, Operand::Imm(2 * radius + 1));
            let off = byte_off4(b, tid);
            g_st(b, style, out, off, div);
        });
    });
    b.ret();
    Arc::new(b.finish().expect("generated kernel is valid"))
}

/// Dense matrix multiply, one element per thread (`n × n`, row-major);
/// affine and fully provable.
pub fn matmul_kernel(name: &str) -> Arc<Kernel> {
    let mut b = KernelBuilder::new(name);
    let a = b.param_buffer("A", true);
    let bb = b.param_buffer("B", true);
    let cc = b.param_buffer("C", false);
    let n = b.param_scalar("n");
    let tid = b.global_thread_id();
    let nn = b.mul(n, n);
    let guard = b.lt(tid, nn);
    b.if_then(guard, |b| {
        let i = b.div(tid, n);
        let j = b.rem(tid, n);
        let acc = b.mov(Operand::Imm(0));
        b.for_loop(Operand::Imm(0), n, 1, |b, k| {
            let in_row = b.mul(i, n);
            let aidx = b.add(in_row, k);
            let aoff = byte_off4(b, aidx);
            let av = g_ld(b, AddrStyle::BaseOffset, a, aoff);
            let krow = b.mul(k, n);
            let bidx = b.add(krow, j);
            let boff = byte_off4(b, bidx);
            let bv = g_ld(b, AddrStyle::BaseOffset, bb, boff);
            let prod = b.mul(av, bv);
            let t = b.add(acc, prod);
            b.assign(acc, t);
        });
        let coff = byte_off4(b, tid);
        g_st(b, AddrStyle::BaseOffset, cc, coff, acc);
    });
    b.ret();
    Arc::new(b.finish().expect("generated kernel is valid"))
}

/// Shared-memory tree reduction (one partial result per workgroup).
/// `block` must be a power of two and is baked into the unrolled tree.
pub fn reduce_kernel(name: &str, block: u32, style: AddrStyle) -> Arc<Kernel> {
    assert!(block.is_power_of_two(), "reduction block must be 2^k");
    let mut b = KernelBuilder::new(name);
    let input = b.param_buffer("in", true);
    let out = b.param_buffer("out", false);
    let n = b.param_scalar("n");
    b.shared_mem(u64::from(block) * 4);
    let ltid = b.mov(b.thread_id());
    let g = b.global_thread_id();
    let x = b.mov(Operand::Imm(0));
    let c = b.lt(g, n);
    b.if_then(c, |b| {
        let off = byte_off4(b, g);
        let v = g_ld(b, style, input, off);
        b.assign(x, v);
    });
    let soff = byte_off4(&mut b, ltid);
    b.st(MemSpace::Shared, MemWidth::W4, b.flat(soff), x);
    b.bar();
    let mut s = block / 2;
    while s >= 1 {
        let cond = b.lt(ltid, Operand::Imm(i64::from(s)));
        b.if_then(cond, |b| {
            let peer = b.add(ltid, Operand::Imm(i64::from(s)));
            let poff = byte_off4(b, peer);
            let pv = b.ld(MemSpace::Shared, MemWidth::W4, b.flat(poff));
            let moff = byte_off4(b, ltid);
            let mv = b.ld(MemSpace::Shared, MemWidth::W4, b.flat(moff));
            let sum = b.add(mv, pv);
            b.st(MemSpace::Shared, MemWidth::W4, b.flat(moff), sum);
        });
        b.bar();
        s /= 2;
    }
    let is0 = b.eq(ltid, Operand::Imm(0));
    b.if_then(is0, |b| {
        let zero = byte_off4(b, Operand::Imm(0));
        let total = b.ld(MemSpace::Shared, MemWidth::W4, b.flat(zero));
        let wg = b.mov(b.block_id());
        let woff = byte_off4(b, wg);
        g_st(b, style, out, woff, total);
    });
    b.ret();
    Arc::new(b.finish().expect("generated kernel is valid"))
}

/// Histogram: data-dependent bin update — the store index is loaded, so it
/// is never provable, and the load/store alternation between two buffers
/// stresses a 1-entry L1 RCache.
pub fn histogram_kernel(name: &str, bins: i64) -> Arc<Kernel> {
    let mut b = KernelBuilder::new(name);
    let data = b.param_buffer("data", true);
    let hist = b.param_buffer("hist", false);
    let n = b.param_scalar("n");
    let tid = b.global_thread_id();
    let c = b.lt(tid, n);
    b.if_then(c, |b| {
        let off = byte_off4(b, tid);
        let v = g_ld(b, AddrStyle::BaseOffset, data, off);
        let bin = b.rem(v, Operand::Imm(bins));
        let boff = byte_off4(b, bin);
        let cur = g_ld(b, AddrStyle::BaseOffset, hist, boff);
        let inc = b.add(cur, Operand::Imm(1));
        g_st(b, AddrStyle::BaseOffset, hist, boff, inc);
    });
    b.ret();
    Arc::new(b.finish().expect("generated kernel is valid"))
}

/// Per-thread local-memory array with a data-dependent index (the
/// particlefilter/myocyte archetype; Table 1's local-memory row). Local
/// variables are laid out interleaved: word `w` of thread `t` lives at
/// `(w * total_threads + t) * 4`.
pub fn local_array_kernel(name: &str, words: i64, iters: i64) -> Arc<Kernel> {
    let mut b = KernelBuilder::new(name);
    let out = b.param_buffer("out", false);
    let n = b.param_scalar("n");
    let total = b.param_scalar("total_threads");
    let arr = b.local_var("scratch", words as u64 * 4);
    let tid = b.global_thread_id();
    let c = b.lt(tid, n);
    b.if_then(c, |b| {
        b.for_loop(Operand::Imm(0), Operand::Imm(iters), 1, |b, i| {
            let w = b.rem(i, Operand::Imm(words));
            let scaled = b.mul(w, total);
            let slot = b.add(scaled, tid);
            let off = byte_off4(b, slot);
            let base = b.local_base(arr);
            let addr = b.base_offset(base, off);
            b.st(MemSpace::Local, MemWidth::W4, addr, i);
        });
        let acc = b.mov(Operand::Imm(0));
        b.for_loop(Operand::Imm(0), Operand::Imm(words), 1, |b, w| {
            let scaled = b.mul(w, total);
            let slot = b.add(scaled, tid);
            let off = byte_off4(b, slot);
            let base = b.local_base(arr);
            let addr = b.base_offset(base, off);
            let x = b.ld(MemSpace::Local, MemWidth::W4, addr);
            let t = b.add(acc, x);
            b.assign(acc, t);
        });
        let goff = byte_off4(b, tid);
        g_st(b, AddrStyle::BaseOffset, out, goff, acc);
    });
    b.ret();
    Arc::new(b.finish().expect("generated kernel is valid"))
}

/// The streamcluster archetype (§8.1): a dependent chain of back-to-back
/// loads/stores that mostly hit the L1 Dcache, launched with little
/// thread-level parallelism — so every extra BCU bubble lands on the
/// critical path instead of being hidden. Half the accesses are affine
/// (provable) and half go through a loaded index (runtime-only), matching
/// the paper's 49.4% check-reduction figure for this benchmark.
pub fn memdense_kernel(name: &str, rounds: usize, style: AddrStyle) -> Arc<Kernel> {
    let mut b = KernelBuilder::new(name);
    let idx = b.param_buffer("idx", true);
    let points = b.param_buffer("points", true);
    let centers = b.param_buffer("centers", false);
    let cost = b.param_buffer("cost", false);
    let n = b.param_scalar("n");
    let tid = b.global_thread_id();
    let c = b.lt(tid, n);
    b.if_then(c, |b| {
        let tid4 = byte_off4(b, tid);
        let acc = b.mov(Operand::Imm(0));
        for k in 0..rounds {
            // Whole-line shifts keep each warp's access a single 128 B
            // transaction (the stall-visible case of Fig. 12).
            let off = b.add(tid4, Operand::Imm((k as i64 % 7) * 128));
            if k % 2 == 0 {
                // Affine round: provable against the points buffer.
                let x = g_ld(b, style, points, off);
                let t = b.xor(acc, x);
                b.assign(acc, t);
            } else {
                // Indirect round: the center index comes from memory.
                let j = g_ld(b, style, idx, off);
                let joff = byte_off4(b, j);
                let y = g_ld(b, style, centers, joff);
                let t = b.add(acc, y);
                b.assign(acc, t);
                g_st(b, style, cost, joff, t);
            }
        }
        g_st(b, style, cost, tid4, acc);
    });
    b.ret();
    Arc::new(b.finish().expect("generated kernel is valid"))
}

/// Device-heap allocation microbenchmark (§5.2.1 footnote 2): every thread
/// `malloc`s a buffer, writes through it, and records the pointer.
pub fn malloc_kernel(name: &str, alloc_bytes: i64) -> Arc<Kernel> {
    let mut b = KernelBuilder::new(name);
    let out = b.param_buffer("out", false);
    let tid = b.global_thread_id();
    let p = b.malloc(Operand::Imm(alloc_bytes));
    let nonnull = b.cmp(CmpOp::Ne, p, Operand::Imm(0));
    b.if_then(nonnull, |b| {
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(p, Operand::Imm(0)),
            tid,
        );
    });
    let off = b.shl(tid, Operand::Imm(3));
    b.st(MemSpace::Global, MemWidth::W8, b.base_offset(out, off), p);
    b.ret();
    Arc::new(b.finish().expect("generated kernel is valid"))
}

/// The §6.4/Fig. 13 kmeans swap kernel, with or without the in-kernel
/// `if (tid < npoints)` software bounds check.
pub fn kmeans_swap_kernel(name: &str, sw_check: bool, nfeatures: i64) -> Arc<Kernel> {
    let mut b = KernelBuilder::new(name);
    let feat = b.param_buffer("feat", true);
    let feat_swap = b.param_buffer("feat_swap", false);
    let npoints = b.param_scalar("npoints");
    let tid = b.global_thread_id();
    let body = |b: &mut KernelBuilder| {
        b.for_loop(Operand::Imm(0), Operand::Imm(nfeatures), 1, |b, i| {
            let src_row = b.mul(tid, Operand::Imm(nfeatures));
            let sidx = b.add(src_row, i);
            let soff = byte_off4(b, sidx);
            let v = g_ld(b, AddrStyle::BaseOffset, feat, soff);
            let dst_col = b.mul(i, npoints);
            let didx = b.add(dst_col, tid);
            let doff = byte_off4(b, didx);
            g_st(b, AddrStyle::BaseOffset, feat_swap, doff, v);
        });
    };
    if sw_check {
        let c = b.lt(tid, npoints);
        b.if_then(c, body);
    } else {
        body(&mut b);
    }
    b.ret();
    Arc::new(b.finish().expect("generated kernel is valid"))
}

/// The §6.4 kernel with a *per-access* software bounds check: every loop
/// iteration re-validates both indices before touching memory — the heavy
/// end of hand-written checking that produces the paper's "up to 76%"
/// overhead.
pub fn kmeans_swap_checked_per_access(name: &str, nfeatures: i64) -> Arc<Kernel> {
    let mut b = KernelBuilder::new(name);
    let feat = b.param_buffer("feat", true);
    let feat_swap = b.param_buffer("feat_swap", false);
    let npoints = b.param_scalar("npoints");
    let tid = b.global_thread_id();
    b.for_loop(Operand::Imm(0), Operand::Imm(nfeatures), 1, |b, i| {
        let src_row = b.mul(tid, Operand::Imm(nfeatures));
        let sidx = b.add(src_row, i);
        let limit = b.mul(npoints, Operand::Imm(nfeatures));
        let src_ok = b.lt(sidx, limit);
        b.if_then(src_ok, |b| {
            let soff = byte_off4(b, sidx);
            let v = g_ld(b, AddrStyle::BaseOffset, feat, soff);
            let dst_col = b.mul(i, npoints);
            let didx = b.add(dst_col, tid);
            let dst_ok = b.lt(didx, limit);
            b.if_then(dst_ok, |b| {
                let doff = byte_off4(b, didx);
                g_st(b, AddrStyle::BaseOffset, feat_swap, doff, v);
            });
        });
    });
    b.ret();
    Arc::new(b.finish().expect("generated kernel is valid"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_valid_kernels() {
        let _ = streaming_kernel("s", 3, 8, AddrStyle::BaseOffset);
        let _ = interleaved_kernel("i", 4, &[0, 1, 2, 3], 16, 5, AddrStyle::Flat);
        let _ = csr_kernel("c", 2, true);
        let _ = stencil_kernel("st", 2, AddrStyle::BindingTable);
        let _ = matmul_kernel("mm");
        let _ = reduce_kernel("r", 128, AddrStyle::BaseOffset);
        let _ = histogram_kernel("h", 64);
        let _ = local_array_kernel("l", 8, 16);
        let _ = malloc_kernel("m", 16);
        let _ = kmeans_swap_kernel("k", true, 4);
        let _ = kmeans_swap_checked_per_access("kpa", 4);
    }

    #[test]
    fn streaming_kernel_counts_buffers() {
        let k = streaming_kernel("s", 5, 0, AddrStyle::BaseOffset);
        assert_eq!(k.buffer_param_count(), 6); // 5 inputs + out
    }

    #[test]
    #[should_panic(expected = "pattern out of range")]
    fn interleaved_pattern_validated() {
        let _ = interleaved_kernel("bad", 2, &[0, 5], 4, 1, AddrStyle::BaseOffset);
    }
}
