//! Hand-written kernels mirroring the actual structure of the Rodinia
//! applications (rather than the parameterised archetypes of
//! [`super::common`]): real neighbour indexing, clamping, per-launch pivot
//! scalars, argmin loops, and multi-kernel phases.
//!
//! These keep the properties the evaluation relies on — affine benchmarks
//! remain statically provable (including through the `min`/`max` clamp
//! idiom), CFD's indirect neighbour accesses stay runtime-checked — while
//! making the instruction mix and buffer roles faithful to the originals.

use crate::dsl::byte_off4;
use gpushield_isa::{CmpOp, Kernel, KernelBuilder, MemSpace, MemWidth, Operand};
use std::sync::Arc;

/// hotspot: 5-point thermal stencil on a `width × width` grid with border
/// guards. The combined `tid`-range and column guards make every neighbour
/// access statically provable, as the paper's 100%-reduction benchmarks
/// are.
pub fn hotspot_kernel(name: &str) -> Arc<Kernel> {
    let mut b = KernelBuilder::new(name);
    let temp = b.param_buffer("temp", true);
    let power = b.param_buffer("power", true);
    let out = b.param_buffer("out", false);
    let width = b.param_scalar("width");
    let tid = b.global_thread_id();
    let n2 = b.mul(width, width);
    // Interior rows: width+1 <= tid < n2-width-1.
    let lo_lim = b.add(width, Operand::Imm(1));
    let lo_ok = b.ge(tid, lo_lim);
    b.if_then(lo_ok, |b| {
        let hi_lim0 = b.sub(n2, width);
        let hi_lim = b.sub(hi_lim0, Operand::Imm(1));
        let hi_ok = b.lt(tid, hi_lim);
        b.if_then(hi_ok, |b| {
            // Interior columns: 0 < tid % width < width-1.
            let col = b.rem(tid, width);
            let col_lo = b.cmp(CmpOp::Gt, col, Operand::Imm(0));
            b.if_then(col_lo, |b| {
                let wm1 = b.sub(width, Operand::Imm(1));
                let col_hi = b.lt(col, wm1);
                b.if_then(col_hi, |b| {
                    let off_c = byte_off4(b, tid);
                    let c = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(temp, off_c));
                    let west = b.sub(tid, Operand::Imm(1));
                    let off_w = byte_off4(b, west);
                    let w = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(temp, off_w));
                    let east = b.add(tid, Operand::Imm(1));
                    let off_e = byte_off4(b, east);
                    let e = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(temp, off_e));
                    let north = b.sub(tid, width);
                    let off_n = byte_off4(b, north);
                    let n = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(temp, off_n));
                    let south = b.add(tid, width);
                    let off_s = byte_off4(b, south);
                    let s = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(temp, off_s));
                    let p = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(power, off_c));
                    // t' = t + (N+S+E+W - 4t + P) / 5 (fixed point).
                    let mut acc = b.add(n, s);
                    acc = b.add(acc, e);
                    acc = b.add(acc, w);
                    let c4 = b.mul(c, Operand::Imm(4));
                    acc = b.sub(acc, c4);
                    acc = b.add(acc, p);
                    let delta = b.div(acc, Operand::Imm(5));
                    let t2 = b.add(c, delta);
                    b.st(
                        MemSpace::Global,
                        MemWidth::W4,
                        b.base_offset(out, off_c),
                        t2,
                    );
                });
            });
        });
    });
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

/// pathfinder: one dynamic-programming row. Each thread takes the min of
/// its three upper neighbours, *clamped* at the edges with the `min`/`max`
/// idiom the static analysis proves through, plus the wall cost for the
/// current row (a per-launch scalar selects the row).
pub fn pathfinder_kernel(name: &str) -> Arc<Kernel> {
    let mut b = KernelBuilder::new(name);
    let wall = b.param_buffer("wall", true);
    let src = b.param_buffer("src", true);
    let dst = b.param_buffer("dst", false);
    let n = b.param_scalar("cols");
    let row = b.param_scalar("row");
    let tid = b.global_thread_id();
    let guard = b.lt(tid, n);
    b.if_then(guard, |b| {
        let lm1 = b.sub(tid, Operand::Imm(1));
        let left = b.max(lm1, Operand::Imm(0));
        let rp1 = b.add(tid, Operand::Imm(1));
        let nm1 = b.sub(n, Operand::Imm(1));
        let right = b.min(rp1, nm1);
        let off_l = byte_off4(b, left);
        let off_c = byte_off4(b, tid);
        let off_r = byte_off4(b, right);
        let a = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(src, off_l));
        let c = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(src, off_c));
        let d = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(src, off_r));
        let m0 = b.min(a, c);
        let m = b.min(m0, d);
        let wr = b.mul(row, n);
        let widx = b.add(wr, tid);
        let woff = byte_off4(b, widx);
        let wv = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(wall, woff));
        let total = b.add(m, wv);
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(dst, off_c),
            total,
        );
    });
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

/// srad phase 1: diffusion coefficient from clamped 4-neighbour gradients.
pub fn srad1_kernel(name: &str) -> Arc<Kernel> {
    let mut b = KernelBuilder::new(name);
    let img = b.param_buffer("image", true);
    let coeff = b.param_buffer("coeff", false);
    let width = b.param_scalar("width");
    let n = b.param_scalar("n");
    let tid = b.global_thread_id();
    let guard = b.lt(tid, n);
    b.if_then(guard, |b| {
        let nm1 = b.sub(n, Operand::Imm(1));
        let up0 = b.sub(tid, width);
        let up = b.max(up0, Operand::Imm(0));
        let dn0 = b.add(tid, width);
        let dn = b.min(dn0, nm1);
        let off_c = byte_off4(b, tid);
        let off_u = byte_off4(b, up);
        let off_d = byte_off4(b, dn);
        let c = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(img, off_c));
        let u = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(img, off_u));
        let d = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(img, off_d));
        let du = b.sub(u, c);
        let dd = b.sub(d, c);
        let g2a = b.mul(du, du);
        let g2b = b.mul(dd, dd);
        let g2 = b.add(g2a, g2b);
        let denom = b.add(g2, Operand::Imm(1));
        let k = b.div(Operand::Imm(1 << 16), denom);
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(coeff, off_c),
            k,
        );
    });
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

/// srad phase 2: divergence update using the phase-1 coefficients.
pub fn srad2_kernel(name: &str) -> Arc<Kernel> {
    let mut b = KernelBuilder::new(name);
    let img = b.param_buffer("image", true);
    let coeff = b.param_buffer("coeff", true);
    let out = b.param_buffer("out", false);
    let width = b.param_scalar("width");
    let n = b.param_scalar("n");
    let tid = b.global_thread_id();
    let guard = b.lt(tid, n);
    b.if_then(guard, |b| {
        let nm1 = b.sub(n, Operand::Imm(1));
        let dn0 = b.add(tid, width);
        let dn = b.min(dn0, nm1);
        let off_c = byte_off4(b, tid);
        let off_d = byte_off4(b, dn);
        let c = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(img, off_c));
        let kc = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(coeff, off_c));
        let kd = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(coeff, off_d));
        let ks = b.add(kc, kd);
        let upd = b.mul(c, ks);
        let scaled = b.shr(upd, Operand::Imm(16));
        let t2 = b.add(c, scaled);
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(out, off_c),
            t2,
        );
    });
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

/// backprop layer-forward: each workgroup computes one hidden unit as a
/// shared-memory dot-product reduction over `block` input elements.
pub fn backprop_forward_kernel(name: &str, block: u32) -> Arc<Kernel> {
    assert!(block.is_power_of_two(), "reduction block must be 2^k");
    let mut b = KernelBuilder::new(name);
    let input = b.param_buffer("input", true);
    let weights = b.param_buffer("weights", true);
    let hidden = b.param_buffer("hidden", false);
    let n_in = b.param_scalar("n_in");
    b.shared_mem(u64::from(block) * 4);
    let ltid = b.mov(b.thread_id());
    let unit = b.mov(b.block_id()); // hidden unit index
    let part = b.mov(Operand::Imm(0));
    let inb = b.lt(ltid, n_in);
    b.if_then(inb, |b| {
        let ioff = byte_off4(b, ltid);
        let x = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(input, ioff));
        let wrow = b.mul(unit, n_in);
        let widx = b.add(wrow, ltid);
        let woff = byte_off4(b, widx);
        let wv = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(weights, woff));
        let p = b.mul(x, wv);
        b.assign(part, p);
    });
    let soff = byte_off4(&mut b, ltid);
    b.st(MemSpace::Shared, MemWidth::W4, b.flat(soff), part);
    b.bar();
    let mut s = block / 2;
    while s >= 1 {
        let cond = b.lt(ltid, Operand::Imm(i64::from(s)));
        b.if_then(cond, |b| {
            let peer = b.add(ltid, Operand::Imm(i64::from(s)));
            let poff = byte_off4(b, peer);
            let pv = b.ld(MemSpace::Shared, MemWidth::W4, b.flat(poff));
            let moff = byte_off4(b, ltid);
            let mv = b.ld(MemSpace::Shared, MemWidth::W4, b.flat(moff));
            let sum = b.add(mv, pv);
            b.st(MemSpace::Shared, MemWidth::W4, b.flat(moff), sum);
        });
        b.bar();
        s /= 2;
    }
    let is0 = b.eq(ltid, Operand::Imm(0));
    b.if_then(is0, |b| {
        let z = byte_off4(b, Operand::Imm(0));
        let total = b.ld(MemSpace::Shared, MemWidth::W4, b.flat(z));
        let hoff = byte_off4(b, unit);
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(hidden, hoff),
            total,
        );
    });
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

/// backprop weight adjustment: `w[u][i] += (delta[u] * in[i]) >> 16`.
pub fn backprop_adjust_kernel(name: &str) -> Arc<Kernel> {
    let mut b = KernelBuilder::new(name);
    let input = b.param_buffer("input", true);
    let delta = b.param_buffer("delta", true);
    let weights = b.param_buffer("weights", false);
    let n_in = b.param_scalar("n_in");
    let hidden = b.param_scalar("hidden");
    let tid = b.global_thread_id();
    let total = b.mul(n_in, hidden);
    let guard = b.lt(tid, total);
    b.if_then(guard, |b| {
        let u = b.div(tid, n_in);
        let i = b.rem(tid, n_in);
        let doff = byte_off4(b, u);
        let dv = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(delta, doff));
        let ioff = byte_off4(b, i);
        let iv = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(input, ioff));
        let g = b.mul(dv, iv);
        let upd = b.shr(g, Operand::Imm(16));
        let woff = byte_off4(b, tid);
        let wv = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(weights, woff));
        let w2 = b.add(wv, upd);
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(weights, woff),
            w2,
        );
    });
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

/// kmeans assignment: per-point argmin over `k` centres × `nfeat` features
/// (squared distance in fixed point).
pub fn kmeans_assign_kernel(name: &str, k: i64, nfeat: i64) -> Arc<Kernel> {
    let mut b = KernelBuilder::new(name);
    let feat = b.param_buffer("feat", true);
    let centers = b.param_buffer("centers", true);
    let membership = b.param_buffer("membership", false);
    let npoints = b.param_scalar("npoints");
    let tid = b.global_thread_id();
    let guard = b.lt(tid, npoints);
    b.if_then(guard, |b| {
        let best_d = b.mov(Operand::Imm(i64::MAX / 4));
        let best_c = b.mov(Operand::Imm(0));
        b.for_loop(Operand::Imm(0), Operand::Imm(k), 1, |b, c| {
            let dist = b.mov(Operand::Imm(0));
            b.for_loop(Operand::Imm(0), Operand::Imm(nfeat), 1, |b, f| {
                let frow = b.mul(tid, Operand::Imm(nfeat));
                let fidx = b.add(frow, f);
                let foff = byte_off4(b, fidx);
                let fv = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(feat, foff));
                let crow = b.mul(c, Operand::Imm(nfeat));
                let cidx = b.add(crow, f);
                let coff = byte_off4(b, cidx);
                let cv = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(centers, coff));
                let diff = b.sub(fv, cv);
                let sq = b.mul(diff, diff);
                let nd = b.add(dist, sq);
                b.assign(dist, nd);
            });
            let better = b.lt(dist, best_d);
            let nd = b.sel(better, dist, best_d);
            let nc = b.sel(better, c, best_c);
            b.assign(best_d, nd);
            b.assign(best_c, nc);
        });
        let moff = byte_off4(b, tid);
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(membership, moff),
            best_c,
        );
    });
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

/// The kmeans assignment with naive *per-access* software bounds checks:
/// every feature/centre load re-validates its index first — what §6.4's
/// "up to 76%" measures on compute-bound kernels.
pub fn kmeans_assign_checked_kernel(name: &str, k: i64, nfeat: i64) -> Arc<Kernel> {
    let mut b = KernelBuilder::new(name);
    let feat = b.param_buffer("feat", true);
    let centers = b.param_buffer("centers", true);
    let membership = b.param_buffer("membership", false);
    let npoints = b.param_scalar("npoints");
    let tid = b.global_thread_id();
    let guard = b.lt(tid, npoints);
    b.if_then(guard, |b| {
        let best_d = b.mov(Operand::Imm(i64::MAX / 4));
        let best_c = b.mov(Operand::Imm(0));
        b.for_loop(Operand::Imm(0), Operand::Imm(k), 1, |b, c| {
            let dist = b.mov(Operand::Imm(0));
            b.for_loop(Operand::Imm(0), Operand::Imm(nfeat), 1, |b, f| {
                let frow = b.mul(tid, Operand::Imm(nfeat));
                let fidx = b.add(frow, f);
                // Software check 1: feature index against the buffer extent.
                let flimit = b.mul(npoints, Operand::Imm(nfeat));
                let f_ok = b.lt(fidx, flimit);
                b.if_then(f_ok, |b| {
                    let foff = byte_off4(b, fidx);
                    let fv = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(feat, foff));
                    let crow = b.mul(c, Operand::Imm(nfeat));
                    let cidx = b.add(crow, f);
                    // Software check 2: centre index.
                    let c_ok = b.lt(cidx, Operand::Imm(k * nfeat));
                    b.if_then(c_ok, |b| {
                        let coff = byte_off4(b, cidx);
                        let cv = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(centers, coff));
                        let diff = b.sub(fv, cv);
                        let sq = b.mul(diff, diff);
                        let nd = b.add(dist, sq);
                        b.assign(dist, nd);
                    });
                });
            });
            let better = b.lt(dist, best_d);
            let nd = b.sel(better, dist, best_d);
            let nc = b.sel(better, c, best_c);
            b.assign(best_d, nd);
            b.assign(best_c, nc);
        });
        let moff = byte_off4(b, tid);
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(membership, moff),
            best_c,
        );
    });
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

/// gaussian Fan1: multiplier column `m[i] = a[i*n+k] / a[k*n+k]` for rows
/// below the pivot (`k` is a per-launch scalar, so indices are provable).
pub fn gaussian_fan1_kernel(name: &str) -> Arc<Kernel> {
    let mut b = KernelBuilder::new(name);
    let a = b.param_buffer("a", true);
    let m = b.param_buffer("m", false);
    let n = b.param_scalar("n");
    let k = b.param_scalar("k");
    let tid = b.global_thread_id();
    let kp1 = b.add(k, Operand::Imm(1));
    let i = b.add(tid, kp1); // rows k+1 .. n-1
    let guard = b.lt(i, n);
    b.if_then(guard, |b| {
        let irow = b.mul(i, n);
        let aik = b.add(irow, k);
        let off_aik = byte_off4(b, aik);
        let av = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(a, off_aik));
        let krow = b.mul(k, n);
        let akk = b.add(krow, k);
        let off_akk = byte_off4(b, akk);
        let piv = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(a, off_akk));
        let q = b.div(av, piv);
        let off_m = byte_off4(b, i);
        b.st(MemSpace::Global, MemWidth::W4, b.base_offset(m, off_m), q);
    });
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

/// gaussian Fan2: eliminate `a[i][j] -= m[i] * a[k][j]` over the trailing
/// submatrix.
pub fn gaussian_fan2_kernel(name: &str) -> Arc<Kernel> {
    let mut b = KernelBuilder::new(name);
    let a = b.param_buffer("a", false);
    let m = b.param_buffer("m", true);
    let n = b.param_scalar("n");
    let k = b.param_scalar("k");
    let tid = b.global_thread_id();
    let kp1 = b.add(k, Operand::Imm(1));
    let rem_w = b.sub(n, kp1); // trailing width
    let total = b.mul(rem_w, rem_w);
    let guard = b.lt(tid, total);
    b.if_then(guard, |b| {
        let di = b.div(tid, rem_w);
        let dj = b.rem(tid, rem_w);
        let i = b.add(di, kp1);
        let j = b.add(dj, kp1);
        let off_mi = byte_off4(b, i);
        let mi = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(m, off_mi));
        let krow = b.mul(k, n);
        let akj = b.add(krow, j);
        let off_akj = byte_off4(b, akj);
        let av = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(a, off_akj));
        let irow = b.mul(i, n);
        let aij = b.add(irow, j);
        let off_aij = byte_off4(b, aij);
        let cur = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(a, off_aij));
        let prod = b.mul(mi, av);
        let nv = b.sub(cur, prod);
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(a, off_aij),
            nv,
        );
    });
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

/// cfd compute-flux: per-element update reading four state arrays at an
/// *indirect* neighbour index — the many-buffer, runtime-checked profile
/// of the real application (8 buffer arguments).
pub fn cfd_flux_kernel(name: &str) -> Arc<Kernel> {
    let mut b = KernelBuilder::new(name);
    let neigh = b.param_buffer("neighbors", true);
    let density = b.param_buffer("density", true);
    let momx = b.param_buffer("mom_x", true);
    let momy = b.param_buffer("mom_y", true);
    let energy = b.param_buffer("energy", true);
    let flux_d = b.param_buffer("flux_d", false);
    let flux_m = b.param_buffer("flux_m", false);
    let flux_e = b.param_buffer("flux_e", false);
    let n = b.param_scalar("n");
    let tid = b.global_thread_id();
    let guard = b.lt(tid, n);
    b.if_then(guard, |b| {
        let off = byte_off4(b, tid);
        let j = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(neigh, off));
        let joff = byte_off4(b, j);
        let d_i = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(density, off));
        let d_j = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(density, joff));
        let mx_j = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(momx, joff));
        let my_j = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(momy, joff));
        let e_j = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(energy, joff));
        let dd = b.sub(d_j, d_i);
        let mm = b.add(mx_j, my_j);
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(flux_d, off),
            dd,
        );
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(flux_m, off),
            mm,
        );
        let ee = b.add(e_j, dd);
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(flux_e, off),
            ee,
        );
    });
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

/// particlefilter find-index: for each particle, linearly scan the CDF for
/// the first entry ≥ its draw (expressed branch-free with `sel`/`min`, as
/// the real kernel's loop is divergence-bound).
pub fn particlefilter_findindex_kernel(name: &str, nparticles: i64) -> Arc<Kernel> {
    let mut b = KernelBuilder::new(name);
    let cdf = b.param_buffer("cdf", true);
    let u = b.param_buffer("u", true);
    let idx_out = b.param_buffer("idx", false);
    let n = b.param_scalar("n");
    let tid = b.global_thread_id();
    let guard = b.lt(tid, n);
    b.if_then(guard, |b| {
        let uoff = byte_off4(b, tid);
        let uv = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(u, uoff));
        let best = b.mov(Operand::Imm(nparticles - 1));
        b.for_loop(Operand::Imm(0), Operand::Imm(nparticles), 1, |b, j| {
            let coff = byte_off4(b, j);
            let cv = b.ld(MemSpace::Global, MemWidth::W4, b.base_offset(cdf, coff));
            let ge = b.ge(cv, uv);
            let cand = b.sel(ge, j, Operand::Imm(nparticles - 1));
            let nb = b.min(best, cand);
            b.assign(best, nb);
        });
        let ooff = byte_off4(b, tid);
        b.st(
            MemSpace::Global,
            MemWidth::W4,
            b.base_offset(idx_out, ooff),
            best,
        );
    });
    b.ret();
    Arc::new(b.finish().expect("valid kernel"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rodinia_kernels_are_valid() {
        let _ = hotspot_kernel("h");
        let _ = pathfinder_kernel("p");
        let _ = srad1_kernel("s1");
        let _ = srad2_kernel("s2");
        let _ = backprop_forward_kernel("bf", 256);
        let _ = backprop_adjust_kernel("ba");
        let _ = kmeans_assign_kernel("ka", 5, 8);
        let _ = kmeans_assign_checked_kernel("kac", 5, 8);
        let _ = gaussian_fan1_kernel("g1");
        let _ = gaussian_fan2_kernel("g2");
        let _ = cfd_flux_kernel("cf");
        let _ = particlefilter_findindex_kernel("pf", 64);
    }

    #[test]
    fn cfd_has_eight_buffer_params() {
        assert_eq!(cfd_flux_kernel("c").buffer_param_count(), 8);
    }
}
