//! Representative single-kernel specifications for the multi-kernel
//! co-execution experiment (paper Fig. 18): the seven OpenCL benchmarks
//! whose 21 pairings share the GPU inter- or intra-core.

use crate::data::{uniform_csr, workload_rng};
use crate::dsl::AddrStyle;
use crate::host::{HostApi, WArg};
use crate::programs::common::{
    csr_kernel, interleaved_kernel, kmeans_swap_kernel, memdense_kernel, stencil_kernel,
};
use gpushield_isa::Kernel;
use std::sync::Arc;

/// Buffer-setup closure: allocates/uploads and returns the bound arguments.
type SetupFn = Box<dyn Fn(&mut dyn HostApi) -> Vec<WArg> + Send + Sync>;

/// One co-runnable kernel: the kernel, its geometry, and a setup closure
/// that allocates/uploads its buffers and returns the bound arguments.
pub struct RepKernel {
    /// Benchmark name (Fig. 18 label).
    pub name: &'static str,
    /// The kernel.
    pub kernel: Arc<Kernel>,
    /// Workgroups.
    pub grid: u32,
    /// Workitems per workgroup.
    pub block: u32,
    setup: SetupFn,
}

impl RepKernel {
    /// Allocates this kernel's buffers on `host` and returns its arguments.
    pub fn bind(&self, host: &mut dyn HostApi) -> Vec<WArg> {
        (self.setup)(host)
    }
}

impl std::fmt::Debug for RepKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RepKernel")
            .field("name", &self.name)
            .field("grid", &self.grid)
            .field("block", &self.block)
            .finish_non_exhaustive()
    }
}

#[allow(clippy::too_many_arguments)]
fn interleaved_rep(
    name: &'static str,
    kname: &'static str,
    n_bufs: usize,
    pattern: &'static [usize],
    iters: i64,
    stride: i64,
    n: u64,
    grid: u32,
    block: u32,
) -> RepKernel {
    RepKernel {
        name,
        kernel: interleaved_kernel(
            kname,
            n_bufs,
            pattern,
            iters,
            stride,
            AddrStyle::BindingTable,
        ),
        grid,
        block,
        setup: Box::new(move |h| {
            let mut args: Vec<WArg> = (0..n_bufs).map(|_| WArg::Buf(h.alloc(n * 4))).collect();
            args.push(WArg::Scalar(n));
            args
        }),
    }
}

fn csr_rep(
    name: &'static str,
    kname: &'static str,
    n_vertices: usize,
    deg: usize,
    n_data: usize,
    grid: u32,
    block: u32,
) -> RepKernel {
    RepKernel {
        name,
        kernel: csr_kernel(kname, n_data, true),
        grid,
        block,
        setup: Box::new(move |h| {
            let mut rng = workload_rng(kname);
            let g = uniform_csr(&mut rng, n_vertices, deg);
            let row = h.alloc(g.row.len() as u64 * 4);
            h.upload_u32(row, 0, &g.row);
            let col = h.alloc(g.col.len().max(1) as u64 * 4);
            h.upload_u32(col, 0, &g.col);
            let mut args = vec![WArg::Buf(row), WArg::Buf(col)];
            for _ in 0..n_data + 1 {
                args.push(WArg::Buf(h.alloc(n_vertices as u64 * 4)));
            }
            args.push(WArg::Scalar(n_vertices as u64));
            args
        }),
    }
}

/// The Fig. 18 representative kernel for `name`, if it is one of the seven.
pub fn representative(name: &str) -> Option<RepKernel> {
    static P0123: [usize; 4] = [0, 1, 2, 3];
    static P012: [usize; 3] = [0, 1, 2];
    Some(match name {
        "bfs" => csr_rep("bfs", "rep_bfs", 8192, 8, 1, 32, 256),
        "cfd" => csr_rep("cfd", "rep_cfd", 4096, 4, 5, 16, 256),
        "hotspot3D" => RepKernel {
            name: "hotspot3D",
            kernel: stencil_kernel("rep_hotspot3d", 1, AddrStyle::BindingTable),
            grid: 128,
            block: 256,
            setup: Box::new(|h| {
                let n = 32768u64;
                vec![
                    WArg::Buf(h.alloc(n * 4)),
                    WArg::Buf(h.alloc(n * 4)),
                    WArg::Scalar(n),
                ]
            }),
        },
        "hybridsort" => interleaved_rep(
            "hybridsort",
            "rep_hybridsort",
            3,
            &P012,
            8,
            32,
            8192,
            32,
            256,
        ),
        "kmeans" => RepKernel {
            name: "kmeans",
            kernel: kmeans_swap_kernel("rep_kmeans_swap", true, 8),
            grid: 32,
            block: 256,
            setup: Box::new(|h| {
                let npoints = 8192u64;
                vec![
                    WArg::Buf(h.alloc(npoints * 8 * 4)),
                    WArg::Buf(h.alloc(npoints * 8 * 4)),
                    WArg::Scalar(npoints),
                ]
            }),
        },
        "nn" => interleaved_rep("nn", "rep_nn", 4, &P0123, 16, 128, 16384, 64, 256),
        "streamcluster" => RepKernel {
            name: "streamcluster",
            kernel: memdense_kernel("rep_streamcluster", 48, AddrStyle::BindingTable),
            grid: 16,
            block: 64,
            setup: Box::new(|h| {
                let n = 1024u64;
                let mut rng = workload_rng("rep_streamcluster");
                let idx_vals = crate::data::random_u32s(&mut rng, n as usize, 32);
                let idx = h.alloc((n + 224) * 4);
                h.upload_u32(idx, 0, &idx_vals);
                vec![
                    WArg::Buf(idx),
                    WArg::Buf(h.alloc((n + 224) * 4)),
                    WArg::Buf(h.alloc((n + 224) * 4)),
                    WArg::Buf(h.alloc((n + 224) * 4)),
                    WArg::Scalar(n),
                ]
            }),
        },
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::ProbeHost;
    use crate::registry::fig18_names;

    #[test]
    fn all_fig18_names_have_representatives() {
        for n in fig18_names() {
            let rep = representative(n).unwrap_or_else(|| panic!("missing rep for {n}"));
            let mut probe = ProbeHost::new();
            let args = rep.bind(&mut probe);
            assert!(!args.is_empty());
            assert_eq!(
                args.iter().filter(|a| matches!(a, WArg::Buf(_))).count(),
                probe.buffer_sizes.len(),
                "{n}: every allocated buffer should be bound"
            );
        }
    }

    #[test]
    fn unknown_name_has_no_representative() {
        assert!(representative("mm").is_none());
    }
}
