//! The workload definitions: one host program per benchmark of Table 6,
//! plus the extra Rodinia applications of Figs. 11 and 19 and the 17
//! OpenCL applications of Figs. 16 and 18.
//!
//! Each program models its namesake's *structural traits* — buffer count,
//! addressing pattern (affine vs indirect), launch structure, memory
//! intensity — which are what the paper's results depend on (DESIGN.md §5).

use crate::data::{random_u32s, uniform_csr, workload_rng};
use crate::dsl::AddrStyle;
use crate::host::{BufId, WArg};
use crate::programs::algos::scan_block_kernel;
use crate::programs::common::{
    csr_kernel, histogram_kernel, interleaved_kernel, kmeans_swap_kernel, local_array_kernel,
    matmul_kernel, memdense_kernel, reduce_kernel, stencil_kernel, streaming_kernel,
};
use crate::programs::rodinia::{
    backprop_adjust_kernel, backprop_forward_kernel, cfd_flux_kernel, gaussian_fan1_kernel,
    gaussian_fan2_kernel, hotspot_kernel, kmeans_assign_kernel, particlefilter_findindex_kernel,
    pathfinder_kernel, srad1_kernel, srad2_kernel,
};
use crate::registry::{Category, Program, Suite, Workload};

const BLOCK: u32 = 256;

fn grid_for(n: u64, block: u32) -> u32 {
    (n as u32).div_ceil(block)
}

fn buf_args(bufs: &[BufId], n: u64) -> Vec<WArg> {
    let mut v: Vec<WArg> = bufs.iter().map(|b| WArg::Buf(*b)).collect();
    v.push(WArg::Scalar(n));
    v
}

/// `launches` invocations of a streaming kernel over `n` elements.
fn streaming_prog(
    kname: &'static str,
    inputs: usize,
    alu: usize,
    n: u64,
    launches: u32,
    style: AddrStyle,
) -> Program {
    Box::new(move |h| {
        let k = streaming_kernel(kname, inputs, alu, style);
        let bufs: Vec<BufId> = (0..inputs + 1).map(|_| h.alloc(n * 4)).collect();
        let args = buf_args(&bufs, n);
        for _ in 0..launches {
            h.launch(&k, grid_for(n, BLOCK), BLOCK, &args);
        }
    })
}

/// Multi-buffer interleaving (the RCache-stress archetype).
#[allow(clippy::too_many_arguments)]
fn interleaved_prog(
    kname: &'static str,
    n_bufs: usize,
    pattern: &'static [usize],
    iters: i64,
    stride: i64,
    n: u64,
    launches: u32,
    block: u32,
    style: AddrStyle,
) -> Program {
    Box::new(move |h| {
        let k = interleaved_kernel(kname, n_bufs, pattern, iters, stride, style);
        let bufs: Vec<BufId> = (0..n_bufs).map(|_| h.alloc(n * 4)).collect();
        let args = buf_args(&bufs, n);
        for _ in 0..launches {
            h.launch(&k, grid_for(n, block), block, &args);
        }
    })
}

/// CSR graph traversal over a synthetic uniform graph.
fn csr_prog(
    kname: &'static str,
    n_vertices: usize,
    deg: usize,
    n_data: usize,
    iters: u32,
) -> Program {
    Box::new(move |h| {
        let mut rng = workload_rng(kname);
        let g = uniform_csr(&mut rng, n_vertices, deg);
        let row = h.alloc((g.row.len() as u64) * 4);
        h.upload_u32(row, 0, &g.row);
        let col = h.alloc((g.col.len().max(1) as u64) * 4);
        h.upload_u32(col, 0, &g.col);
        let mut bufs = vec![row, col];
        for _ in 0..n_data {
            bufs.push(h.alloc(n_vertices as u64 * 4));
        }
        bufs.push(h.alloc(n_vertices as u64 * 4)); // out
        let k = csr_kernel(kname, n_data, true);
        let args = buf_args(&bufs, n_vertices as u64);
        for _ in 0..iters {
            h.launch(&k, grid_for(n_vertices as u64, BLOCK), BLOCK, &args);
        }
    })
}

/// Iterated stencil with ping-pong buffers.
fn stencil_prog(kname: &'static str, radius: i64, n: u64, iters: u32, style: AddrStyle) -> Program {
    Box::new(move |h| {
        let k = stencil_kernel(kname, radius, style);
        let a = h.alloc(n * 4);
        let b = h.alloc(n * 4);
        for i in 0..iters {
            let (src, dst) = if i % 2 == 0 { (a, b) } else { (b, a) };
            h.launch(
                &k,
                grid_for(n, BLOCK),
                BLOCK,
                &[WArg::Buf(src), WArg::Buf(dst), WArg::Scalar(n)],
            );
        }
    })
}

/// Dense matmul (`dim × dim`).
fn matmul_prog(kname: &'static str, dim: u64) -> Program {
    Box::new(move |h| {
        let k = matmul_kernel(kname);
        let n2 = dim * dim;
        let a = h.alloc(n2 * 4);
        let b = h.alloc(n2 * 4);
        let c = h.alloc(n2 * 4);
        h.launch(
            &k,
            grid_for(n2, BLOCK),
            BLOCK,
            &[WArg::Buf(a), WArg::Buf(b), WArg::Buf(c), WArg::Scalar(dim)],
        );
    })
}

/// Two-stage shared-memory reduction.
fn reduce_prog(kname: &'static str, n: u64, style: AddrStyle) -> Program {
    Box::new(move |h| {
        let k = reduce_kernel(kname, BLOCK, style);
        let input = h.alloc(n * 4);
        let stage1 = grid_for(n, BLOCK) as u64;
        let partial = h.alloc(stage1.max(1) * 4 * BLOCK as u64);
        let out = h.alloc(4 * BLOCK as u64);
        h.launch(
            &k,
            stage1 as u32,
            BLOCK,
            &[WArg::Buf(input), WArg::Buf(partial), WArg::Scalar(n)],
        );
        h.launch(
            &k,
            grid_for(stage1, BLOCK),
            BLOCK,
            &[WArg::Buf(partial), WArg::Buf(out), WArg::Scalar(stage1)],
        );
    })
}

/// Data-dependent histogram.
fn histogram_prog(kname: &'static str, bins: i64, n: u64) -> Program {
    Box::new(move |h| {
        let mut rng = workload_rng(kname);
        let vals = random_u32s(&mut rng, n as usize, u32::MAX);
        let data = h.alloc(n * 4);
        h.upload_u32(data, 0, &vals);
        let hist = h.alloc(bins as u64 * 4);
        let k = histogram_kernel(kname, bins);
        h.launch(
            &k,
            grid_for(n, BLOCK),
            BLOCK,
            &[WArg::Buf(data), WArg::Buf(hist), WArg::Scalar(n)],
        );
    })
}

/// Local-memory array workload.
fn local_prog(kname: &'static str, words: i64, iters: i64, n: u64, block: u32) -> Program {
    Box::new(move |h| {
        let k = local_array_kernel(kname, words, iters);
        let out = h.alloc(n * 4);
        let total = u64::from(grid_for(n, block)) * u64::from(block);
        h.launch(
            &k,
            grid_for(n, block),
            block,
            &[WArg::Buf(out), WArg::Scalar(n), WArg::Scalar(total)],
        );
    })
}

/// kmeans: the Fig. 13 swap kernel plus the real per-point argmin
/// assignment over `k` centres.
fn kmeans_prog(kname: &'static str, _style: AddrStyle) -> Program {
    Box::new(move |h| {
        const NPOINTS: u64 = 8192;
        const NFEAT: i64 = 8;
        const K: i64 = 5;
        let swap = kmeans_swap_kernel("kmeans_swap", true, NFEAT);
        let assign = kmeans_assign_kernel(kname, K, NFEAT);
        let feat = h.alloc(NPOINTS * NFEAT as u64 * 4);
        let feat_swap = h.alloc(NPOINTS * NFEAT as u64 * 4);
        let centers = h.alloc((K * NFEAT) as u64 * 4);
        let membership = h.alloc(NPOINTS * 4);
        h.launch(
            &swap,
            grid_for(NPOINTS, BLOCK),
            BLOCK,
            &[WArg::Buf(feat), WArg::Buf(feat_swap), WArg::Scalar(NPOINTS)],
        );
        for _ in 0..3 {
            h.launch(
                &assign,
                grid_for(NPOINTS, BLOCK),
                BLOCK,
                &[
                    WArg::Buf(feat_swap),
                    WArg::Buf(centers),
                    WArg::Buf(membership),
                    WArg::Scalar(NPOINTS),
                ],
            );
        }
    })
}

/// backprop: the real layer-forward (one hidden unit per workgroup,
/// shared-memory dot-product reduce) plus the 2-D weight adjustment.
fn backprop_prog(_style: AddrStyle) -> Program {
    Box::new(move |h| {
        const N_IN: u64 = 256; // one workgroup of inputs per hidden unit
        const HIDDEN: u64 = 64;
        let forward = backprop_forward_kernel("backprop_forward", BLOCK);
        let adjust = backprop_adjust_kernel("backprop_adjust");
        let input = h.alloc(N_IN * 4);
        let weights = h.alloc(N_IN * HIDDEN * 4);
        let hidden = h.alloc(HIDDEN * 4);
        let delta = h.alloc(HIDDEN * 4);
        h.launch(
            &forward,
            HIDDEN as u32,
            BLOCK,
            &[
                WArg::Buf(input),
                WArg::Buf(weights),
                WArg::Buf(hidden),
                WArg::Scalar(N_IN),
            ],
        );
        h.launch(
            &adjust,
            grid_for(N_IN * HIDDEN, BLOCK),
            BLOCK,
            &[
                WArg::Buf(input),
                WArg::Buf(delta),
                WArg::Buf(weights),
                WArg::Scalar(N_IN),
                WArg::Scalar(HIDDEN),
            ],
        );
    })
}

/// streamcluster: many launches of a small, L1-resident, load/store-dense
/// kernel with little TLP — the paper's pathological case for per-access
/// overheads (the real application performs 1000 kernel invocations; we
/// run 150 and the launch-overhead models scale per launch, preserving the
/// shape).
fn streamcluster_prog(kname: &'static str, style: AddrStyle) -> Program {
    Box::new(move |h| {
        const N: u64 = 1024;
        let k = memdense_kernel(kname, 48, style);
        let mut rng = workload_rng(kname);
        // Center indices stay in a 32-element (one-transaction, L1-resident)
        // window: streamcluster's distance loop touches few centers, which
        // is what makes it L1-bandwidth-bound (§8.1).
        let idx_vals = random_u32s(&mut rng, N as usize, 32);
        let idx = h.alloc((N + 224) * 4);
        h.upload_u32(idx, 0, &idx_vals);
        let points = h.alloc((N + 224) * 4);
        let centers = h.alloc((N + 224) * 4);
        let cost = h.alloc((N + 224) * 4);
        let args = vec![
            WArg::Buf(idx),
            WArg::Buf(points),
            WArg::Buf(centers),
            WArg::Buf(cost),
            WArg::Scalar(N),
        ];
        for _ in 0..150 {
            h.launch(&k, 16, 64, &args);
        }
    })
}

/// nw: wavefront dynamic programming, one small launch per anti-diagonal.
/// Each diagonal's slice is small enough to stay L1-resident, so — like
/// streamcluster — nw exposes RCache latency when it is lengthened.
fn nw_prog(kname: &'static str) -> Program {
    Box::new(move |h| {
        const N: u64 = 1024;
        static PATTERN: [usize; 3] = [0, 1, 2];
        let k = interleaved_kernel(kname, 3, &PATTERN, 24, 32, AddrStyle::BaseOffset);
        let bufs: Vec<BufId> = (0..3).map(|_| h.alloc(N * 4)).collect();
        let args = buf_args(&bufs, N);
        for _ in 0..32 {
            h.launch(&k, grid_for(N, 64), 64, &args);
        }
    })
}

/// lud: per-step diagonal/perimeter/internal sweeps over an `n × n` matrix.
fn lud_prog(kname: &'static str, steps: u32, n_elems: u64) -> Program {
    Box::new(move |h| {
        static PATTERN: [usize; 3] = [0, 1, 2];
        let k = interleaved_kernel(kname, 3, &PATTERN, 8, 16, AddrStyle::BaseOffset);
        let bufs: Vec<BufId> = (0..3).map(|_| h.alloc(n_elems * 4)).collect();
        let args = buf_args(&bufs, n_elems);
        for _ in 0..steps {
            h.launch(&k, grid_for(n_elems, BLOCK), BLOCK, &args);
        }
    })
}

/// gaussian: the real Fan1 (multiplier column) / Fan2 (elimination)
/// per-pivot launch pair; the pivot index is a known per-launch scalar, so
/// every index is provable (gaussian is a 100%-reduction benchmark).
fn gaussian_prog() -> Program {
    Box::new(move |h| {
        const N: u64 = 48;
        let fan1 = gaussian_fan1_kernel("gaussian_fan1");
        let fan2 = gaussian_fan2_kernel("gaussian_fan2");
        let a = h.alloc(N * N * 4);
        let m = h.alloc(N * 4);
        for k in 0..N - 1 {
            h.launch(
                &fan1,
                grid_for(N, 64),
                64,
                &[WArg::Buf(a), WArg::Buf(m), WArg::Scalar(N), WArg::Scalar(k)],
            );
            h.launch(
                &fan2,
                grid_for(N * N, BLOCK),
                BLOCK,
                &[WArg::Buf(a), WArg::Buf(m), WArg::Scalar(N), WArg::Scalar(k)],
            );
        }
    })
}

/// hotspot: iterated 5-point thermal stencil with ping-pong temperatures.
fn hotspot_prog(kname: &'static str, width: u64, iters: u32) -> Program {
    Box::new(move |h| {
        let k = hotspot_kernel(kname);
        let n2 = width * width;
        let a = h.alloc(n2 * 4);
        let b = h.alloc(n2 * 4);
        let power = h.alloc(n2 * 4);
        for i in 0..iters {
            let (src, dst) = if i % 2 == 0 { (a, b) } else { (b, a) };
            h.launch(
                &k,
                grid_for(n2, BLOCK),
                BLOCK,
                &[
                    WArg::Buf(src),
                    WArg::Buf(power),
                    WArg::Buf(dst),
                    WArg::Scalar(width),
                ],
            );
        }
    })
}

/// pathfinder: one launch per DP row, neighbours clamped at the edges.
fn pathfinder_prog_real(kname: &'static str, cols: u64, rows: u64) -> Program {
    Box::new(move |h| {
        let mut rng = workload_rng(kname);
        let k = pathfinder_kernel(kname);
        let wall_vals = random_u32s(&mut rng, (cols * rows) as usize, 10);
        let wall = h.alloc(cols * rows * 4);
        h.upload_u32(wall, 0, &wall_vals);
        let a = h.alloc(cols * 4);
        let b = h.alloc(cols * 4);
        for row in 0..rows {
            let (src, dst) = if row % 2 == 0 { (a, b) } else { (b, a) };
            h.launch(
                &k,
                grid_for(cols, BLOCK),
                BLOCK,
                &[
                    WArg::Buf(wall),
                    WArg::Buf(src),
                    WArg::Buf(dst),
                    WArg::Scalar(cols),
                    WArg::Scalar(row),
                ],
            );
        }
    })
}

/// srad: the two-phase diffusion per iteration.
fn srad_prog(kname: &'static str, width: u64, iters: u32) -> Program {
    Box::new(move |h| {
        let _ = kname;
        let k1 = srad1_kernel("srad1");
        let k2 = srad2_kernel("srad2");
        let n = width * width;
        let img = h.alloc(n * 4);
        let coeff = h.alloc(n * 4);
        let out = h.alloc(n * 4);
        for i in 0..iters {
            let (src, dst) = if i % 2 == 0 { (img, out) } else { (out, img) };
            h.launch(
                &k1,
                grid_for(n, BLOCK),
                BLOCK,
                &[
                    WArg::Buf(src),
                    WArg::Buf(coeff),
                    WArg::Scalar(width),
                    WArg::Scalar(n),
                ],
            );
            h.launch(
                &k2,
                grid_for(n, BLOCK),
                BLOCK,
                &[
                    WArg::Buf(src),
                    WArg::Buf(coeff),
                    WArg::Buf(dst),
                    WArg::Scalar(width),
                    WArg::Scalar(n),
                ],
            );
        }
    })
}

/// cfd: indirect-neighbour flux computation over 8 buffers.
fn cfd_prog_real(kname: &'static str, n: u64, iters: u32) -> Program {
    Box::new(move |h| {
        let mut rng = workload_rng(kname);
        let k = cfd_flux_kernel(kname);
        let neigh_vals = random_u32s(&mut rng, n as usize, n as u32);
        let neigh = h.alloc(n * 4);
        h.upload_u32(neigh, 0, &neigh_vals);
        let bufs: Vec<BufId> = (0..7).map(|_| h.alloc(n * 4)).collect();
        let mut args = vec![WArg::Buf(neigh)];
        args.extend(bufs.iter().map(|b| WArg::Buf(*b)));
        args.push(WArg::Scalar(n));
        for _ in 0..iters {
            h.launch(&k, grid_for(n, BLOCK), BLOCK, &args);
        }
    })
}

/// particlefilter: local-memory likelihood weights plus the CDF search.
fn particlefilter_prog_real() -> Program {
    Box::new(move |h| {
        const N: u64 = 4096;
        const NP: i64 = 128;
        let weights = local_array_kernel("particlefilter_weights", 8, 16);
        let find = particlefilter_findindex_kernel("particlefilter_findindex", NP);
        let out = h.alloc(N * 4);
        let total = u64::from(grid_for(N, 128)) * 128;
        h.launch(
            &weights,
            grid_for(N, 128),
            128,
            &[WArg::Buf(out), WArg::Scalar(N), WArg::Scalar(total)],
        );
        let cdf = h.alloc(NP as u64 * 4);
        let u = h.alloc(N * 4);
        let idx = h.alloc(N * 4);
        h.launch(
            &find,
            grid_for(N, BLOCK),
            BLOCK,
            &[
                WArg::Buf(cdf),
                WArg::Buf(u),
                WArg::Buf(idx),
                WArg::Scalar(N),
            ],
        );
    })
}

/// Bitonic-style sorting network: log²(n) strided passes over one buffer.
fn sorting_prog(kname: &'static str, n: u64, passes: u32, style: AddrStyle) -> Program {
    Box::new(move |h| {
        static PATTERN: [usize; 2] = [0, 0];
        let k = interleaved_kernel(kname, 1, &PATTERN, 2, 512, style);
        let data = h.alloc(n * 4);
        let args = buf_args(&[data], n);
        for _ in 0..passes {
            h.launch(&k, grid_for(n, BLOCK), BLOCK, &args);
        }
    })
}

/// hybridsort: a bucket histogram followed by merge passes.
fn hybridsort_prog(kname: &'static str, style: AddrStyle) -> Program {
    Box::new(move |h| {
        const N: u64 = 8192;
        let mut rng = workload_rng(kname);
        let vals = random_u32s(&mut rng, N as usize, u32::MAX);
        let bucket = histogram_kernel("hybridsort_bucket", 64);
        static PATTERN: [usize; 3] = [0, 1, 2];
        let merge = interleaved_kernel("hybridsort_merge", 3, &PATTERN, 8, 32, style);
        let data = h.alloc(N * 4);
        h.upload_u32(data, 0, &vals);
        let hist = h.alloc(64 * 4);
        h.launch(
            &bucket,
            grid_for(N, BLOCK),
            BLOCK,
            &[WArg::Buf(data), WArg::Buf(hist), WArg::Scalar(N)],
        );
        let aux = h.alloc(N * 4);
        let out = h.alloc(N * 4);
        let margs = buf_args(&[data, aux, out], N);
        for _ in 0..6 {
            h.launch(&merge, grid_for(N, BLOCK), BLOCK, &margs);
        }
    })
}

/// Matrix transpose: coalesced loads, strided stores (the CUDA-SDK
/// `transpose` archetype). Affine and provable.
fn transpose_prog(kname: &'static str, dim: u64) -> Program {
    Box::new(move |h| {
        let k = {
            use crate::dsl::{byte_off4, g_ld, g_st};
            use gpushield_isa::KernelBuilder;
            let mut b = KernelBuilder::new(kname);
            let input = b.param_buffer("in", true);
            let out = b.param_buffer("out", false);
            let n = b.param_scalar("n");
            let tid = b.global_thread_id();
            let nn = b.mul(n, n);
            let guard = b.lt(tid, nn);
            b.if_then(guard, |b| {
                let i = b.div(tid, n);
                let j = b.rem(tid, n);
                let src = byte_off4(b, tid);
                let v = g_ld(b, AddrStyle::BaseOffset, input, src);
                let jrow = b.mul(j, n);
                let didx = b.add(jrow, i);
                let doff = byte_off4(b, didx);
                g_st(b, AddrStyle::BaseOffset, out, doff, v);
            });
            b.ret();
            std::sync::Arc::new(b.finish().expect("valid kernel"))
        };
        let n2 = dim * dim;
        let a = h.alloc(n2 * 4);
        let o = h.alloc(n2 * 4);
        h.launch(
            &k,
            grid_for(n2, BLOCK),
            BLOCK,
            &[WArg::Buf(a), WArg::Buf(o), WArg::Scalar(dim)],
        );
    })
}

fn w(
    name: &'static str,
    suite: Suite,
    category: Category,
    sensitive: bool,
    program: Program,
) -> Workload {
    Workload::new(name, suite, category, sensitive, program)
}

/// Builds the full registry.
pub fn all_workloads() -> Vec<Workload> {
    use AddrStyle::{BaseOffset as C, BindingTable as A, Flat as B};
    use Category::{Dm, Gi, Gt, Im, La, Ml, Ps};
    use Suite::{CudaSdk, FinanceBench, GraphBig, Parboil, PolybenchAcc, Rodinia, Shoc};
    static P012: [usize; 3] = [0, 1, 2];
    static P0123: [usize; 4] = [0, 1, 2, 3];
    static P001: [usize; 3] = [0, 0, 1];
    static P01: [usize; 2] = [0, 1];

    let mut v: Vec<Workload> = Vec::new();

    // --- Machine learning (Table 6 ML) --------------------------------
    v.push(w("mm", PolybenchAcc, Ml, false, matmul_prog("mm", 64)));
    v.push(w(
        "ConvSep",
        CudaSdk,
        Ml,
        true,
        interleaved_prog("ConvSep", 3, &P012, 9, 1, 16384, 1, BLOCK, C),
    ));
    v.push(w(
        "kmeans",
        Rodinia,
        Ml,
        false,
        kmeans_prog("kmeans_assign", C),
    ));
    v.push(w("backprop", Rodinia, Ml, false, backprop_prog(C)));

    // --- Linear algebra (Table 6 LA) -----------------------------------
    v.push(w(
        "sad",
        Parboil,
        La,
        false,
        stencil_prog("sad", 8, 16384, 1, C),
    ));
    v.push(w(
        "spmv",
        Parboil,
        La,
        false,
        csr_prog("spmv", 8192, 8, 2, 1),
    ));
    v.push(w(
        "stencil",
        Parboil,
        La,
        false,
        stencil_prog("stencil", 1, 32768, 2, C),
    ));
    v.push(w(
        "ScalarProd",
        CudaSdk,
        La,
        true,
        interleaved_prog("ScalarProd", 3, &P012, 16, 64, 8192, 1, BLOCK, C),
    ));
    v.push(w(
        "vectoradd",
        CudaSdk,
        La,
        false,
        streaming_prog("vectoradd", 2, 2, 32768, 1, C),
    ));
    v.push(w(
        "dct",
        CudaSdk,
        La,
        false,
        streaming_prog("dct", 1, 24, 16384, 1, C),
    ));
    v.push(w(
        "Reduction",
        CudaSdk,
        La,
        true,
        interleaved_prog("Reduction", 2, &P001, 24, 1, 8192, 1, BLOCK, C),
    ));

    // --- Graph traversal (Table 6 GT) -----------------------------------
    v.push(w("bc", GraphBig, Gt, true, csr_prog("bc", 4096, 6, 3, 3)));
    v.push(w(
        "bfs-dtc",
        Rodinia,
        Gt,
        true,
        csr_prog("bfs-dtc", 8192, 8, 1, 6),
    ));
    v.push(w(
        "gc-dtc",
        GraphBig,
        Gt,
        true,
        csr_prog("gc-dtc", 4096, 8, 2, 4),
    ));
    v.push(w(
        "sssp-dwc",
        GraphBig,
        Gt,
        true,
        csr_prog("sssp-dwc", 4096, 8, 2, 6),
    ));
    v.push(w(
        "lavaMD",
        Rodinia,
        Gt,
        false,
        csr_prog("lavaMD", 4096, 12, 2, 1),
    ));
    v.push(w("gaussian", Rodinia, Gt, false, gaussian_prog()));
    v.push(w(
        "nn-256k-1",
        Rodinia,
        Gt,
        true,
        interleaved_prog("nn-256k-1", 4, &P0123, 16, 64, 16384, 1, BLOCK, C),
    ));

    // --- Graph iterative (Table 6 GI) ------------------------------------
    v.push(w(
        "pagerank",
        GraphBig,
        Gi,
        false,
        csr_prog("pagerank", 8192, 8, 1, 5),
    ));
    v.push(w(
        "kcore",
        GraphBig,
        Gi,
        false,
        csr_prog("kcore", 4096, 8, 1, 4),
    ));
    v.push(w(
        "trianglecount",
        GraphBig,
        Gi,
        false,
        csr_prog("trianglecount", 2048, 16, 1, 1),
    ));

    // --- Physics and modelling (Table 6 PS) ------------------------------
    v.push(w(
        "cutcp",
        Parboil,
        Ps,
        false,
        stencil_prog("cutcp", 4, 16384, 1, C),
    ));
    v.push(w(
        "tpacf",
        Parboil,
        Ps,
        false,
        histogram_prog("tpacf", 64, 16384),
    ));
    v.push(w(
        "blacksholes",
        FinanceBench,
        Ps,
        false,
        streaming_prog("blacksholes", 5, 24, 32768, 1, C),
    ));
    v.push(w(
        "mersennetwister",
        CudaSdk,
        Ps,
        false,
        streaming_prog("mersennetwister", 1, 16, 32768, 1, C),
    ));
    v.push(w(
        "sorting",
        Shoc,
        Ps,
        false,
        sorting_prog("sorting", 8192, 28, C),
    ));
    v.push(w(
        "shoc-reduction",
        Shoc,
        La,
        false,
        reduce_prog("shoc_reduction", 65536, C),
    ));
    v.push(w(
        "scan",
        Shoc,
        La,
        false,
        Box::new(|h| {
            const N: u64 = 16384;
            let k = scan_block_kernel(256);
            let input = h.alloc(N * 4);
            let out = h.alloc(N * 4);
            let sums = h.alloc((N / 256) * 4);
            h.launch(
                &k,
                (N / 256) as u32,
                256,
                &[
                    WArg::Buf(input),
                    WArg::Buf(out),
                    WArg::Buf(sums),
                    WArg::Scalar(N),
                ],
            );
        }),
    ));
    v.push(w(
        "MergeSort",
        CudaSdk,
        Ps,
        true,
        interleaved_prog("MergeSort", 3, &P012, 12, 32, 8192, 10, BLOCK, C),
    ));

    // --- Image and media (Table 6 IM) -------------------------------------
    v.push(w(
        "mri-q",
        Parboil,
        Im,
        false,
        streaming_prog("mri-q", 5, 20, 16384, 1, C),
    ));
    v.push(w(
        "SobolQRNG",
        CudaSdk,
        Im,
        true,
        interleaved_prog("SobolQRNG", 3, &P012, 20, 17, 8192, 1, BLOCK, C),
    ));
    v.push(w(
        "DwtHarr",
        CudaSdk,
        Im,
        false,
        streaming_prog("DwtHarr", 1, 6, 16384, 4, C),
    ));
    v.push(w(
        "hotspot",
        Rodinia,
        Im,
        false,
        hotspot_prog("hotspot", 128, 5),
    ));
    v.push(w("lud-64", Rodinia, Im, true, lud_prog("lud-64", 4, 4096)));
    v.push(w(
        "lud-256",
        Rodinia,
        Im,
        true,
        lud_prog("lud-256", 8, 16384),
    ));
    v.push(w(
        "LineOfSight",
        CudaSdk,
        Im,
        true,
        interleaved_prog("LineOfSight", 3, &P012, 12, 1, 8192, 1, BLOCK, C),
    ));
    v.push(w(
        "Dxtc",
        CudaSdk,
        Im,
        true,
        interleaved_prog("Dxtc", 4, &P0123, 10, 16, 8192, 1, BLOCK, C),
    ));
    v.push(w(
        "Histogram",
        CudaSdk,
        Im,
        true,
        histogram_prog("Histogram", 256, 32768),
    ));
    v.push(w(
        "HSOpticalFlow",
        CudaSdk,
        Im,
        false,
        stencil_prog("HSOpticalFlow", 2, 16384, 2, C),
    ));

    // --- Data mining (Table 6 DM) -----------------------------------------
    v.push(w(
        "streamcluster",
        Rodinia,
        Dm,
        true,
        streamcluster_prog("streamcluster", C),
    ));
    v.push(w("nw", Rodinia, Dm, true, nw_prog("nw")));

    // --- Additional named CUDA benchmarks (suite breadth for Fig. 1) ------
    v.push(w(
        "transpose",
        CudaSdk,
        Im,
        false,
        transpose_prog("transpose", 96),
    ));
    v.push(w("sgemm", Parboil, La, false, matmul_prog("sgemm", 96)));
    v.push(w(
        "lbm",
        Parboil,
        Ps,
        false,
        stencil_prog("lbm", 4, 32768, 2, C),
    ));
    v.push(w(
        "histo",
        Parboil,
        Im,
        false,
        histogram_prog("histo", 128, 16384),
    ));
    v.push(w(
        "mri-gridding",
        Parboil,
        Im,
        false,
        interleaved_prog("mri-gridding", 3, &P012, 10, 23, 8192, 1, BLOCK, C),
    ));
    v.push(w("atax", PolybenchAcc, La, false, matmul_prog("atax", 48)));
    v.push(w("bicg", PolybenchAcc, La, false, matmul_prog("bicg", 56)));
    v.push(w("mvt", PolybenchAcc, La, false, matmul_prog("mvt", 64)));
    v.push(w(
        "gemver",
        PolybenchAcc,
        La,
        false,
        streaming_prog("gemver", 4, 10, 16384, 1, C),
    ));
    v.push(w(
        "jacobi2d",
        PolybenchAcc,
        Ps,
        false,
        stencil_prog("jacobi2d", 1, 16384, 4, C),
    ));
    v.push(w(
        "fdtd2d",
        PolybenchAcc,
        Ps,
        false,
        stencil_prog("fdtd2d", 2, 16384, 3, C),
    ));
    v.push(w(
        "correlation",
        PolybenchAcc,
        Dm,
        false,
        matmul_prog("correlation", 40),
    ));
    v.push(w(
        "covariance",
        PolybenchAcc,
        Dm,
        false,
        matmul_prog("covariance", 40),
    ));
    v.push(w(
        "scalarprod-shoc",
        Shoc,
        La,
        false,
        streaming_prog("scalarprod_shoc", 2, 4, 32768, 1, C),
    ));
    v.push(w(
        "spmv-shoc",
        Shoc,
        La,
        false,
        csr_prog("spmv_shoc", 4096, 10, 1, 1),
    ));
    v.push(w("md", Shoc, Ps, false, csr_prog("md", 2048, 16, 2, 1)));
    v.push(w("fft", Shoc, Im, false, sorting_prog("fft", 8192, 13, C)));
    v.push(w(
        "quasirandom",
        CudaSdk,
        Ps,
        false,
        streaming_prog("quasirandom", 1, 20, 32768, 1, C),
    ));
    v.push(w(
        "binomialoptions",
        FinanceBench,
        Ps,
        false,
        streaming_prog("binomialoptions", 3, 32, 16384, 1, C),
    ));
    v.push(w(
        "montecarlo-fb",
        FinanceBench,
        Ps,
        false,
        streaming_prog("montecarlo_fb", 2, 40, 16384, 1, C),
    ));

    // --- Rodinia applications of Figs. 11 and 19 not in Table 6 ----------
    v.push(w(
        "b+tree",
        Rodinia,
        Gt,
        false,
        csr_prog("b+tree", 4096, 4, 1, 2),
    ));
    v.push(w("cfd", Rodinia, Ps, false, cfd_prog_real("cfd", 8192, 2)));
    v.push(w(
        "dwt2d",
        Rodinia,
        Im,
        false,
        streaming_prog("dwt2d", 1, 8, 16384, 3, C),
    ));
    v.push(w(
        "heartwall",
        Rodinia,
        Im,
        false,
        matmul_prog("heartwall", 48),
    ));
    v.push(w(
        "hotspot3D",
        Rodinia,
        Im,
        false,
        hotspot_prog("hotspot3D", 180, 3),
    ));
    v.push(w(
        "hybridsort",
        Rodinia,
        Ps,
        false,
        hybridsort_prog("hybridsort", C),
    ));
    v.push(w(
        "myocyte",
        Rodinia,
        Ps,
        false,
        local_prog("myocyte", 16, 32, 128, 128),
    ));
    v.push(w(
        "particlefilter",
        Rodinia,
        Ps,
        false,
        particlefilter_prog_real(),
    ));
    v.push(w(
        "pathfinder",
        Rodinia,
        Ps,
        false,
        pathfinder_prog_real("pathfinder", 8192, 20),
    ));
    v.push(w("srad", Rodinia, Im, false, srad_prog("srad", 128, 3)));

    // --- The 17 OpenCL benchmarks (Table 6, run on Intel; Fig. 16) -------
    // Intel kernels use Method A (binding-table) addressing where the
    // archetype supports it (§2.2).
    v.push(w(
        "ocl:backprop",
        Suite::OpenCl,
        Category::OpenCl,
        false,
        backprop_prog(A),
    ));
    v.push(w(
        "ocl:bfs",
        Suite::OpenCl,
        Category::OpenCl,
        false,
        csr_prog("ocl_bfs", 8192, 8, 1, 6),
    ));
    v.push(w(
        "ocl:BitonicSort",
        Suite::OpenCl,
        Category::OpenCl,
        false,
        sorting_prog("ocl_bitonic", 8192, 28, A),
    ));
    v.push(w(
        "ocl:GEMM",
        Suite::OpenCl,
        Category::OpenCl,
        false,
        matmul_prog("ocl_gemm", 64),
    ));
    v.push(w(
        "ocl:image",
        Suite::OpenCl,
        Category::OpenCl,
        false,
        streaming_prog("ocl_image", 2, 10, 32768, 1, A),
    ));
    v.push(w(
        "ocl:lavaMD",
        Suite::OpenCl,
        Category::OpenCl,
        false,
        csr_prog("ocl_lavamd", 4096, 12, 2, 1),
    ));
    v.push(w(
        "ocl:MedianFilter",
        Suite::OpenCl,
        Category::OpenCl,
        false,
        stencil_prog("ocl_median", 2, 16384, 1, A),
    ));
    v.push(w(
        "ocl:cfd",
        Suite::OpenCl,
        Category::OpenCl,
        false,
        cfd_prog_real("ocl_cfd", 8192, 2),
    ));
    v.push(w(
        "ocl:MonteCarlo",
        Suite::OpenCl,
        Category::OpenCl,
        false,
        streaming_prog("ocl_montecarlo", 1, 32, 32768, 1, A),
    ));
    v.push(w(
        "ocl:pathfinder",
        Suite::OpenCl,
        Category::OpenCl,
        false,
        pathfinder_prog_real("ocl_pathfinder", 8192, 20),
    ));
    v.push(w(
        "ocl:svm",
        Suite::OpenCl,
        Category::OpenCl,
        false,
        interleaved_prog("ocl_svm", 2, &P01, 16, 8, 8192, 1, BLOCK, A),
    ));
    v.push(w(
        "ocl:hotspot",
        Suite::OpenCl,
        Category::OpenCl,
        false,
        hotspot_prog("ocl_hotspot", 128, 5),
    ));
    v.push(w(
        "ocl:hotspot3D",
        Suite::OpenCl,
        Category::OpenCl,
        false,
        hotspot_prog("ocl_hotspot3d", 180, 3),
    ));
    v.push(w(
        "ocl:hybridsort",
        Suite::OpenCl,
        Category::OpenCl,
        false,
        hybridsort_prog("ocl_hybridsort", A),
    ));
    v.push(w(
        "ocl:kmeans",
        Suite::OpenCl,
        Category::OpenCl,
        false,
        kmeans_prog("ocl_kmeans", A),
    ));
    v.push(w(
        "ocl:nn",
        Suite::OpenCl,
        Category::OpenCl,
        false,
        interleaved_prog("ocl_nn", 4, &P0123, 16, 64, 16384, 1, BLOCK, B),
    ));
    v.push(w(
        "ocl:streamcluster",
        Suite::OpenCl,
        Category::OpenCl,
        false,
        streamcluster_prog("ocl_streamcluster", A),
    ));

    v
}
