//! Workload host programs and kernel generators.

pub mod algos;
pub mod common;
pub mod rep;
pub mod rodinia;
pub mod suites;
