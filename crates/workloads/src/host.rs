//! The host-program interface workloads are written against.
//!
//! A workload is a small host program — allocate buffers, upload inputs,
//! launch kernels (possibly many times) — expressed against the [`HostApi`]
//! trait so the same program can run on a protected system, an unprotected
//! baseline, or a pure metadata probe, without this crate depending on the
//! simulator.

use gpushield_isa::Kernel;
use std::sync::Arc;

/// Workload-local buffer identifier (allocation order).
pub type BufId = usize;

/// A kernel argument in a workload program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WArg {
    /// A device buffer allocated through [`HostApi::alloc`].
    Buf(BufId),
    /// A scalar.
    Scalar(u64),
}

/// What a workload's host program may do.
pub trait HostApi {
    /// Allocates a device buffer and returns its workload-local id.
    fn alloc(&mut self, bytes: u64) -> BufId;

    /// Uploads little-endian `u32`s at `offset_bytes`.
    fn upload_u32(&mut self, buf: BufId, offset_bytes: u64, data: &[u32]);

    /// Reserves the device heap.
    fn set_heap(&mut self, bytes: u64);

    /// Launches a kernel and waits for completion.
    fn launch(&mut self, kernel: &Arc<Kernel>, grid: u32, block: u32, args: &[WArg]);
}

/// A metadata-only host: records allocations and launches without running
/// anything. Regenerates the quantities of paper Figs. 1 and 11.
#[derive(Debug, Default)]
pub struct ProbeHost {
    /// Sizes of all allocations, in order.
    pub buffer_sizes: Vec<u64>,
    /// Number of launches performed.
    pub launches: u64,
    /// Distinct kernels launched (by name).
    pub kernel_names: Vec<String>,
    /// Maximum number of *buffer* arguments any single launch bound —
    /// the per-kernel buffer count of Fig. 1.
    pub max_buffers_per_kernel: usize,
    /// Heap bytes reserved, if any.
    pub heap_bytes: Option<u64>,
    /// Total warp-level work estimate: Σ grid×block over launches.
    pub total_threads: u64,
}

impl ProbeHost {
    /// Creates an empty probe.
    pub fn new() -> Self {
        ProbeHost::default()
    }

    /// Number of 4 KB pages per buffer, averaged (Fig. 11's quantity).
    pub fn avg_pages_per_buffer(&self) -> f64 {
        if self.buffer_sizes.is_empty() {
            return 0.0;
        }
        let pages: u64 = self.buffer_sizes.iter().map(|s| s.div_ceil(4096)).sum();
        pages as f64 / self.buffer_sizes.len() as f64
    }
}

impl HostApi for ProbeHost {
    fn alloc(&mut self, bytes: u64) -> BufId {
        self.buffer_sizes.push(bytes);
        self.buffer_sizes.len() - 1
    }

    fn upload_u32(&mut self, _buf: BufId, _offset_bytes: u64, _data: &[u32]) {}

    fn set_heap(&mut self, bytes: u64) {
        self.heap_bytes = Some(bytes);
    }

    fn launch(&mut self, kernel: &Arc<Kernel>, grid: u32, block: u32, args: &[WArg]) {
        self.launches += 1;
        self.total_threads += u64::from(grid) * u64::from(block);
        let name = kernel.name().to_string();
        if !self.kernel_names.contains(&name) {
            self.kernel_names.push(name);
        }
        let bufs = args.iter().filter(|a| matches!(a, WArg::Buf(_))).count();
        self.max_buffers_per_kernel = self.max_buffers_per_kernel.max(bufs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpushield_isa::KernelBuilder;

    #[test]
    fn probe_records_metadata() {
        let mut p = ProbeHost::new();
        let a = p.alloc(4096);
        let b = p.alloc(8192 + 1);
        let mut kb = KernelBuilder::new("k");
        kb.ret();
        let k = Arc::new(kb.finish().unwrap());
        p.launch(&k, 2, 32, &[WArg::Buf(a), WArg::Buf(b), WArg::Scalar(1)]);
        p.launch(&k, 2, 32, &[WArg::Buf(a)]);
        assert_eq!(p.launches, 2);
        assert_eq!(p.max_buffers_per_kernel, 2);
        assert_eq!(p.kernel_names, vec!["k"]);
        assert_eq!(p.total_threads, 128);
        // 4096 B = 1 page; 8193 B = 3 pages (div_ceil) → average 2.
        assert!((p.avg_pages_per_buffer() - 2.0).abs() < 1e-12);
    }
}
