//! The workload registry: every benchmark the evaluation runs, with the
//! suite/category metadata of paper Table 6 and Fig. 1.

use crate::host::{HostApi, ProbeHost};
use std::fmt;

/// Benchmark suite a workload models (the paper draws from 13 suites;
/// Fig. 1's histogram is regenerated over the suites represented here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Rodinia (CUDA).
    Rodinia,
    /// Parboil (CUDA).
    Parboil,
    /// GraphBig (CUDA).
    GraphBig,
    /// CUDA SDK samples.
    CudaSdk,
    /// FinanceBench-style financial kernels.
    FinanceBench,
    /// SHOC-style HPC kernels.
    Shoc,
    /// PolyBench/ACC-style affine kernels.
    PolybenchAcc,
    /// The Intel OpenCL set of Table 6.
    OpenCl,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Suite::Rodinia => "rodinia",
            Suite::Parboil => "Parboil",
            Suite::GraphBig => "GraphBig",
            Suite::CudaSdk => "CUDA-SDK",
            Suite::FinanceBench => "FinanceBench",
            Suite::Shoc => "SHOC",
            Suite::PolybenchAcc => "PolyBench/ACC",
            Suite::OpenCl => "OpenCL",
        };
        f.write_str(s)
    }
}

/// Application domain (paper Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Machine learning.
    Ml,
    /// Linear algebra.
    La,
    /// Graph traversal.
    Gt,
    /// Graph iterative.
    Gi,
    /// Physics and modelling.
    Ps,
    /// Image and media.
    Im,
    /// Data mining.
    Dm,
    /// The OpenCL set (evaluated on the Intel configuration).
    OpenCl,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::Ml => "ML",
            Category::La => "LA",
            Category::Gt => "GT",
            Category::Gi => "GI",
            Category::Ps => "PS",
            Category::Im => "IM",
            Category::Dm => "DM",
            Category::OpenCl => "OpenCL",
        };
        f.write_str(s)
    }
}

/// A host-program closure.
pub type Program = Box<dyn Fn(&mut dyn HostApi) + Send + Sync>;

/// One benchmark: metadata plus the host program that runs it.
pub struct Workload {
    name: &'static str,
    suite: Suite,
    category: Category,
    rcache_sensitive: bool,
    program: Program,
}

impl Workload {
    /// Creates a workload.
    pub fn new(
        name: &'static str,
        suite: Suite,
        category: Category,
        rcache_sensitive: bool,
        program: Program,
    ) -> Self {
        Workload {
            name,
            suite,
            category,
            rcache_sensitive,
            program,
        }
    }

    /// Unique registry name (OpenCL variants carry an `ocl:` prefix).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Name without the suite prefix — what the paper's figures label.
    pub fn display_name(&self) -> &str {
        self.name.rsplit(':').next().expect("non-empty name")
    }

    /// Source suite.
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// Application domain.
    pub fn category(&self) -> Category {
        self.category
    }

    /// True for the Fig. 15 RCache-sensitive set.
    pub fn rcache_sensitive(&self) -> bool {
        self.rcache_sensitive
    }

    /// Runs the host program against `host`.
    pub fn run(&self, host: &mut dyn HostApi) {
        (self.program)(host);
    }

    /// Runs the program against a metadata probe (no simulation) — the
    /// source of Figs. 1 and 11.
    pub fn probe(&self) -> ProbeHost {
        let mut p = ProbeHost::new();
        self.run(&mut p);
        p
    }
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .field("category", &self.category)
            .field("rcache_sensitive", &self.rcache_sensitive)
            .finish_non_exhaustive()
    }
}

/// All workloads (CUDA-model set plus the OpenCL set).
///
/// # Example
///
/// ```
/// use gpushield_workloads::{all, by_name};
///
/// assert!(all().len() > 60);
/// let w = by_name("streamcluster").expect("registered");
/// let probe = w.probe();
/// assert_eq!(probe.launches, 150);
/// assert_eq!(probe.max_buffers_per_kernel, 4);
/// ```
pub fn all() -> Vec<Workload> {
    crate::programs::suites::all_workloads()
}

/// Looks a workload up by registry name (`ocl:` prefix for OpenCL ones).
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name() == name)
}

/// The CUDA-model workloads (run on the Nvidia configuration).
pub fn cuda_set() -> Vec<Workload> {
    all()
        .into_iter()
        .filter(|w| w.suite() != Suite::OpenCl)
        .collect()
}

/// The 17 OpenCL workloads (run on the Intel configuration, Fig. 16).
pub fn opencl_set() -> Vec<Workload> {
    all()
        .into_iter()
        .filter(|w| w.suite() == Suite::OpenCl)
        .collect()
}

/// The Fig. 15 RCache-sensitive benchmarks.
pub fn rcache_sensitive_set() -> Vec<Workload> {
    cuda_set()
        .into_iter()
        .filter(|w| w.rcache_sensitive())
        .collect()
}

/// The Rodinia workloads used in the software-tool comparison (Fig. 19).
pub fn fig19_set() -> Vec<Workload> {
    const NAMES: [&str; 9] = [
        "bfs-dtc",
        "gaussian",
        "heartwall",
        "hotspot",
        "kmeans",
        "lavaMD",
        "lud-64",
        "particlefilter",
        "streamcluster",
    ];
    NAMES.iter().filter_map(|n| by_name(n)).collect()
}

/// The Rodinia workloads whose buffers Fig. 11 counts pages for.
pub fn fig11_set() -> Vec<Workload> {
    all()
        .into_iter()
        .filter(|w| w.suite() == Suite::Rodinia)
        .collect()
}

/// The 7 OpenCL benchmarks the multi-kernel experiment pairs (Fig. 18).
pub fn fig18_names() -> [&'static str; 7] {
    [
        "bfs",
        "cfd",
        "hotspot3D",
        "hybridsort",
        "kmeans",
        "nn",
        "streamcluster",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_names_are_unique() {
        let names: Vec<&str> = all().iter().map(|w| w.name()).collect();
        let set: HashSet<&&str> = names.iter().collect();
        assert_eq!(set.len(), names.len(), "duplicate workload names");
    }

    #[test]
    fn every_workload_probes_cleanly() {
        for w in all() {
            let p = w.probe();
            assert!(p.launches > 0, "{} never launches", w.name());
            assert!(
                p.max_buffers_per_kernel > 0,
                "{} binds no buffers",
                w.name()
            );
            assert!(
                p.max_buffers_per_kernel <= 34,
                "{} exceeds the paper's max of 34 buffers",
                w.name()
            );
        }
    }

    #[test]
    fn buffer_count_distribution_matches_fig1_shape() {
        // Fig. 1: most kernels have < 10 buffers; the average is ~6.5.
        let counts: Vec<usize> = all()
            .iter()
            .map(|w| w.probe().max_buffers_per_kernel)
            .collect();
        let avg = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!(avg > 2.0 && avg < 10.0, "avg buffers {avg}");
        let lt10 = counts.iter().filter(|c| **c < 10).count();
        assert!(lt10 * 10 >= counts.len() * 7, "most should be <10");
    }

    #[test]
    fn named_sets_are_complete() {
        assert_eq!(opencl_set().len(), 17, "Table 6 lists 17 OpenCL benchmarks");
        assert_eq!(rcache_sensitive_set().len(), 17, "Fig. 15 plots 17");
        assert_eq!(fig19_set().len(), 9, "Fig. 19 plots 9 Rodinia benchmarks");
        for n in fig18_names() {
            assert!(
                by_name(&format!("ocl:{n}")).is_some(),
                "fig18 name {n} missing from the OpenCL set"
            );
        }
        assert!(cuda_set().len() >= 39, "CUDA-model set too small");
    }

    #[test]
    fn lookup_by_name_roundtrips() {
        for w in all() {
            assert_eq!(by_name(w.name()).unwrap().name(), w.name());
        }
        assert!(by_name("definitely-not-a-workload").is_none());
    }
}
